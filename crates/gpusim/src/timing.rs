//! Execution-time model: a bounded-overlap roofline over the compute, L2,
//! DRAM and shared-memory phases, plus staging-synchronization and launch
//! overheads.

use crate::arch::GpuArch;
use crate::occupancy::Occupancy;
use crate::spec::KernelExecSpec;
use crate::traffic::TrafficReport;

/// Time decomposition of one launch (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingBreakdown {
    /// Arithmetic-pipe busy time.
    pub compute_s: f64,
    /// L2 transfer time.
    pub l2_s: f64,
    /// DRAM transfer time (row-efficiency weighted).
    pub dram_s: f64,
    /// Shared-memory transfer time.
    pub shared_s: f64,
    /// Block-barrier time for staged kernels.
    pub sync_s: f64,
    /// Launch overhead.
    pub launch_s: f64,
    /// Total before DVFS capping / noise.
    pub total_s: f64,
    /// Effective compute throughput fraction of peak.
    pub compute_efficiency: f64,
    /// Whether the launch is executable (blocks fit on an SM).
    pub valid: bool,
}

impl TimingBreakdown {
    /// An unexecutable launch (a block exceeds per-SM resources).
    pub fn invalid() -> Self {
        TimingBreakdown {
            compute_s: f64::INFINITY,
            l2_s: 0.0,
            dram_s: 0.0,
            shared_s: 0.0,
            sync_s: 0.0,
            launch_s: 0.0,
            total_s: f64::INFINITY,
            compute_efficiency: 0.0,
            valid: false,
        }
    }

    /// Fraction of the total attributable to arithmetic (used to scale
    /// dynamic SM power).
    pub fn compute_fraction(&self) -> f64 {
        if !self.valid || self.total_s <= 0.0 {
            0.0
        } else {
            (self.compute_s / self.total_s).clamp(0.0, 1.0)
        }
    }
}

/// Runs the timing model.
pub fn model(
    arch: &GpuArch,
    spec: &KernelExecSpec,
    occ: &Occupancy,
    traffic: &TrafficReport,
) -> TimingBreakdown {
    if occ.blocks_per_sm == 0 || spec.grid_blocks <= 0 || spec.threads_per_block <= 0 {
        return TimingBreakdown::invalid();
    }

    // -- compute phase ---------------------------------------------------
    // Latency hiding saturates: a ~15% occupancy already sustains a large
    // fraction of peak, full occupancy reaches it.
    let occ_eff = (occ.occupancy / (occ.occupancy + 0.15)) * 1.15;
    // Multiple points per thread expose ILP and amortize addressing.
    let ilp = 1.0 + 0.15 * (1.0 - 1.0 / spec.points_per_thread.max(1) as f64);
    // Warp divergence/underfill: blocks smaller than a warp waste lanes.
    let warp_fill =
        (spec.threads_per_block as f64 / arch.threads_per_warp as f64).min(1.0);
    let spill_penalty = if occ.register_spill { 0.5 } else { 1.0 };
    let compute_efficiency = (occ_eff * ilp * warp_fill * occ.tail_efficiency * spill_penalty)
        .clamp(0.0, 1.3)
        * occ.active_fraction(arch).max(1.0 / arch.sm_count as f64);
    let peak_flops = arch.peak_gflops(spec.elem_bytes) * 1e9;
    let compute_s = spec.flops_total / (peak_flops * compute_efficiency.max(1e-6));

    // -- memory phases -----------------------------------------------------
    let l2_s = traffic.l2_bytes / (arch.l2_bw_gbs * 1e9);
    let dram_s = traffic.dram_time_bytes / (arch.dram_bw_gbs * 1e9);
    // Shared memory and L1 are per-SM resources: idle SMs contribute no
    // load/store throughput.
    let onchip_bw = arch.shared_bw_gbs * 1e9 * occ.active_fraction(arch).max(1e-3);
    let shared_s = (traffic.shared_bytes + traffic.l1_hit_bytes) / onchip_bw;

    // -- synchronization ---------------------------------------------------
    let staged = spec.refs.iter().any(|r| r.staged_shared);
    let sync_s = if staged {
        spec.serial_steps_per_block.max(0) as f64
            * arch.barrier_overhead_s
            * occ.waves.ceil().max(1.0)
    } else {
        0.0
    };

    let phases = [compute_s, l2_s, dram_s, shared_s];
    let bound = phases.iter().cloned().fold(0.0, f64::max);
    let sum: f64 = phases.iter().sum();
    // Imperfect overlap: the non-dominant phases leak 30% of their time.
    let total_s = bound + 0.3 * (sum - bound) + sync_s + arch.launch_overhead_s;

    TimingBreakdown {
        compute_s,
        l2_s,
        dram_s,
        shared_s,
        sync_s,
        launch_s: arch.launch_overhead_s,
        total_s,
        compute_efficiency,
        valid: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;
    use crate::spec::RefAccess;
    use crate::traffic;

    fn spec() -> KernelExecSpec {
        KernelExecSpec {
            name: "time".into(),
            grid_blocks: 50_000,
            grid_x_blocks: 250,
            threads_per_block: 256,
            points_per_thread: 1,
            serial_steps_per_block: 100,
            flops_total: 1e12,
            elem_bytes: 8,
            shared_bytes_per_block: 0,
            l1_avail_bytes: 96 * 1024,
            num_refs: 2,
            refs: vec![RefAccess::streaming("a", 10_000_000, 2048, true)],
        }
    }

    fn run(s: &KernelExecSpec) -> TimingBreakdown {
        let arch = GpuArch::ga100();
        let occ = occupancy(&arch, s);
        let t = traffic::model(&arch, s, &occ);
        model(&arch, s, &occ, &t)
    }

    #[test]
    fn compute_bound_kernel_tracks_peak() {
        let t = run(&spec());
        assert!(t.valid);
        // 1 TFLOP at ~9.7 TFLOP/s peak: order 0.1 s.
        assert!(t.total_s > 0.05 && t.total_s < 1.0, "got {}", t.total_s);
        assert!(t.compute_fraction() > 0.5);
    }

    #[test]
    fn more_flops_takes_longer() {
        let s1 = spec();
        let mut s2 = spec();
        s2.flops_total *= 4.0;
        assert!(run(&s2).total_s > 2.0 * run(&s1).total_s);
    }

    #[test]
    fn sub_warp_blocks_are_penalized() {
        let full = spec();
        let mut tiny = spec();
        tiny.threads_per_block = 8; // quarter of a warp
        let t_full = run(&full);
        let t_tiny = run(&tiny);
        assert!(t_tiny.compute_efficiency < t_full.compute_efficiency);
        assert!(t_tiny.total_s > t_full.total_s);
    }

    #[test]
    fn low_occupancy_slows_compute() {
        let mut low = spec();
        low.grid_blocks = 8; // 8 blocks on 108 SMs
        low.grid_x_blocks = 8;
        let t_low = run(&low);
        let t_high = run(&spec());
        assert!(t_low.compute_efficiency < t_high.compute_efficiency);
    }

    #[test]
    fn staging_adds_sync_time() {
        let mut staged = spec();
        staged.shared_bytes_per_block = 4096;
        staged.refs = vec![RefAccess {
            staged_shared: true,
            ..RefAccess::streaming("a", 10_000_000, 2048, true)
        }];
        let t = run(&staged);
        assert!(t.sync_s > 0.0);
        assert_eq!(run(&spec()).sync_s, 0.0);
    }

    #[test]
    fn invalid_launch_is_flagged() {
        let mut bad = spec();
        bad.shared_bytes_per_block = 10 * 1024 * 1024;
        let t = run(&bad);
        assert!(!t.valid);
        assert!(t.total_s.is_infinite());
        assert_eq!(t.compute_fraction(), 0.0);
    }

    #[test]
    fn memory_bound_kernel_is_dominated_by_dram() {
        let mut s = spec();
        s.flops_total = 1e6; // negligible compute
        s.refs = vec![RefAccess::streaming("big", 2_000_000_000, 40_000, true)];
        let t = run(&s);
        assert!(t.dram_s > t.compute_s);
    }
}
