//! Cross-validation of the analytic traffic model against the
//! trace-driven [`CacheSim`].
//!
//! The analytic model (see [`crate::traffic`]) decides L1 residency from
//! footprint arithmetic. This module replays *actual address streams* of
//! miniature tiled kernels through the LRU simulator and exposes the
//! measured miss counts, so tests can check that the analytic rules agree
//! with ground truth in the regimes they claim to cover:
//!
//! * a reference whose per-step footprint fits pays compulsory misses
//!   only (the "resident" rule);
//! * a reused reference whose footprint exceeds the capacity re-misses
//!   every sweep (the "thrash" rule);
//! * a streaming reference's misses are independent of tile size
//!   (the "residency = thread band" rule).

use crate::cache::CacheSim;

/// Measured line-level misses of one simulated reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMisses {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Line misses observed.
    pub misses: u64,
    /// Distinct lines in the stream (compulsory floor).
    pub compulsory: u64,
}

impl StreamMisses {
    /// Miss ratio beyond the compulsory floor, in `[0, 1]`.
    pub fn excess_miss_ratio(&self) -> f64 {
        if self.accesses == self.compulsory {
            return 0.0;
        }
        (self.misses - self.compulsory) as f64 / (self.accesses - self.compulsory) as f64
    }
}

fn replay(cache: &mut CacheSim, addrs: impl Iterator<Item = u64>) -> StreamMisses {
    let line = cache.line_bytes();
    let mut lines = std::collections::BTreeSet::new();
    let mut accesses = 0;
    let mut misses = 0;
    for a in addrs {
        lines.insert(a / line);
        accesses += 1;
        if cache.access(a) == crate::cache::AccessOutcome::Miss {
            misses += 1;
        }
    }
    StreamMisses {
        accesses,
        misses,
        compulsory: lines.len() as u64,
    }
}

/// Replays the `B[k][j]` stream of a tiled matmul block: for each of
/// `steps` k-tiles, every `(i, j, k)` point of the `ti × tj × tk` tile
/// reads `B[k][j]` (row-major, `elem`-byte elements, row length `n`).
///
/// With an LRU cache of `cache_bytes`, the analytic model predicts:
/// misses ≈ compulsory when `tk·tj·elem` fits (residency), and misses
/// close to one per `(i, k-tile)` sweep when it does not (thrash).
#[allow(clippy::too_many_arguments)] // a flat geometry description
pub fn matmul_b_stream(
    cache_bytes: u64,
    line_bytes: u64,
    elem: u64,
    n: u64,
    ti: u64,
    tj: u64,
    tk: u64,
    steps: u64,
) -> StreamMisses {
    let mut cache = CacheSim::fully_associative(cache_bytes, line_bytes);
    let mut stream: Vec<u64> = Vec::new();
    for step in 0..steps {
        let k0 = step * tk;
        for i in 0..ti {
            let _ = i;
            for j in 0..tj {
                for k in k0..(k0 + tk).min(n) {
                    stream.push((k * n + j) * elem);
                }
            }
        }
    }
    replay(&mut cache, stream.into_iter())
}

/// Replays a 5-point stencil block's read stream over a `ti × tj` tile
/// (row-major array of row length `n`), visiting points in the
/// y-band-then-x order a GPU block with `band` rows of threads uses.
pub fn stencil_stream(
    cache_bytes: u64,
    line_bytes: u64,
    elem: u64,
    n: u64,
    ti: u64,
    tj: u64,
    band: u64,
) -> StreamMisses {
    let mut cache = CacheSim::fully_associative(cache_bytes, line_bytes);
    let mut stream: Vec<u64> = Vec::new();
    let mut band_start = 1;
    while band_start < ti.max(2) {
        for i in band_start..(band_start + band).min(ti) {
            for j in 1..tj.max(2) {
                for (di, dj) in [(0i64, 0i64), (0, -1), (0, 1), (1, 0), (-1, 0)] {
                    let ii = (i as i64 + di) as u64;
                    let jj = (j as i64 + dj) as u64;
                    stream.push((ii * n + jj) * elem);
                }
            }
        }
        band_start += band;
    }
    replay(&mut cache, stream.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: u64 = 64;
    const ELEM: u64 = 8;

    /// Analytic "resident" rule: a k-tile of B that fits in cache pays
    /// compulsory misses only, even though it is re-read `ti` times.
    #[test]
    fn resident_tile_pays_compulsory_only() {
        // tk*tj*8 = 16*32*8 = 4 KiB inside a 16 KiB cache.
        let m = matmul_b_stream(16 * 1024, LINE, ELEM, 256, 16, 32, 16, 4);
        assert_eq!(m.misses, m.compulsory, "{m:?}");
        assert_eq!(m.excess_miss_ratio(), 0.0);
    }

    /// Analytic "thrash" rule: a k-tile larger than the cache re-misses
    /// on every i-sweep.
    #[test]
    fn oversized_tile_thrashes() {
        // tk*tj*8 = 64*128*8 = 64 KiB against a 16 KiB cache.
        let m = matmul_b_stream(16 * 1024, LINE, ELEM, 256, 8, 128, 64, 2);
        assert!(
            m.misses >= 4 * m.compulsory,
            "expected heavy re-missing: {m:?}"
        );
        assert!(m.excess_miss_ratio() > 0.05, "{m:?}");
    }

    /// The transition point sits where the footprint crosses capacity —
    /// the exact criterion the analytic residency rule tests.
    #[test]
    fn residency_threshold_matches_capacity() {
        let misses_at = |tj: u64| {
            matmul_b_stream(16 * 1024, LINE, ELEM, 512, 8, tj, 32, 2)
        };
        // 32*tj*8 bytes: tj=32 → 8 KiB (fits), tj=128 → 32 KiB (does not).
        let fits = misses_at(32);
        let thrash = misses_at(128);
        assert_eq!(fits.misses, fits.compulsory);
        assert!(thrash.misses > thrash.compulsory * 15 / 10);
    }

    /// Analytic "streaming" rule: a stencil's misses per point do not
    /// depend on the tile size — only the compulsory halo grows.
    #[test]
    fn stencil_misses_are_tile_size_independent() {
        let small = stencil_stream(8 * 1024, LINE, ELEM, 1024, 32, 32, 16);
        let large = stencil_stream(8 * 1024, LINE, ELEM, 1024, 128, 128, 16);
        // Both should be compulsory-dominated despite the 16× footprint
        // difference (the live set is the thread band, not the tile).
        assert!(
            small.excess_miss_ratio() < 0.05,
            "small tile: {small:?}"
        );
        assert!(
            large.excess_miss_ratio() < 0.05,
            "large tile: {large:?}"
        );
    }

    /// A stencil band *wider than the cache* does re-miss — the streaming
    /// rule's own limit (the band must fit, which it does on real L1s).
    #[test]
    fn stencil_band_exceeding_cache_re_misses() {
        // Row length 4096 * 8 B = 32 KiB per row; a 4-row band in a 16 KiB
        // cache cannot hold the previous row for halo reuse.
        let m = stencil_stream(16 * 1024, LINE, ELEM, 4096, 16, 4096, 4);
        // Each row is visited three times (lower halo, center, upper halo)
        // and evicted in between, so ~2 extra misses per compulsory line:
        // excess ≈ 2·c / (5·points − c) ≈ 0.05; assert the effect exists
        // with headroom below that analytic estimate.
        assert!(m.excess_miss_ratio() > 0.03, "{m:?}");
    }

    #[test]
    fn excess_ratio_degenerate() {
        let m = StreamMisses {
            accesses: 10,
            misses: 10,
            compulsory: 10,
        };
        assert_eq!(m.excess_miss_ratio(), 0.0);
    }
}
