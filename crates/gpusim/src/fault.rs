//! Deterministic fault injection.
//!
//! Real measurement campaigns fail in mundane ways: a launch aborts with a
//! driver error, a power sample comes back empty, a counter overflows into
//! garbage. The EATSS pipeline must degrade gracefully through all of
//! them, so this module lets tests inject exactly those failures into the
//! simulator — *deterministically*, seeded the same way as [`crate::noise`]
//! so a failing run replays bit-for-bit.

use crate::metrics::SimReport;
use crate::noise;
use crate::spec::KernelExecSpec;
use std::error::Error;
use std::fmt;

/// The kinds of failure a [`FaultPlan`] can inject into a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The launch aborts outright (driver error, unlaunchable config):
    /// [`Gpu::try_simulate`](crate::Gpu::try_simulate) returns an error.
    LaunchFailure,
    /// The launch runs but the measurement comes back flagged invalid
    /// (infinite time, zero throughput) — like an empty `nvidia-smi`
    /// sample window.
    InvalidReport,
    /// The launch runs and *looks* valid, but the derived rates are NaN —
    /// like a counter that overflowed mid-run. The nastiest case: it
    /// poisons naive comparisons downstream instead of failing loudly.
    NanReport,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LaunchFailure => write!(f, "launch failure"),
            FaultKind::InvalidReport => write!(f, "invalid report"),
            FaultKind::NanReport => write!(f, "NaN report"),
        }
    }
}

/// A launch that failed under an injected [`FaultKind::LaunchFailure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFault {
    /// Name of the kernel whose launch failed.
    pub kernel: String,
    /// The injected failure kind.
    pub kind: FaultKind,
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated fault on kernel `{}`: {}", self.kernel, self.kind)
    }
}

impl Error for SimFault {}

/// A deterministic schedule of injected failures.
///
/// Two mechanisms, combinable:
///
/// * **rates** — each launch draws a uniform value from a hash of the
///   plan seed and the launch's [`KernelExecSpec::fingerprint`], and
///   fails with the configured per-kind probabilities. The same launch
///   under the same plan always faults (or not) identically.
/// * **forced faults** — exact kernel names that always fail with a
///   given kind, for pinpoint tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    launch_failure_rate: f64,
    invalid_rate: f64,
    nan_rate: f64,
    forced: Vec<(String, FaultKind)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults configured yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the per-launch probabilities of each fault kind. The sum is
    /// clamped to 1 by precedence: launch failure, then invalid, then NaN.
    pub fn with_rates(mut self, launch_failure: f64, invalid: f64, nan: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&launch_failure)
                && (0.0..=1.0).contains(&invalid)
                && (0.0..=1.0).contains(&nan),
            "fault rates must be probabilities"
        );
        self.launch_failure_rate = launch_failure;
        self.invalid_rate = invalid;
        self.nan_rate = nan;
        self
    }

    /// Forces every launch of the kernel named `name` to fail with `kind`
    /// (checked before the stochastic rates).
    pub fn force(mut self, name: &str, kind: FaultKind) -> Self {
        self.forced.push((name.to_owned(), kind));
        self
    }

    /// The fault injected into this launch, if any. Pure function of the
    /// plan and the spec.
    pub fn fault_for(&self, spec: &KernelExecSpec) -> Option<FaultKind> {
        if let Some((_, kind)) = self.forced.iter().find(|(n, _)| *n == spec.name) {
            return Some(*kind);
        }
        let total = self.launch_failure_rate + self.invalid_rate + self.nan_rate;
        if total <= 0.0 {
            return None;
        }
        // Map the signed noise unit to [0, 1) and walk the cumulative
        // distribution.
        let u = (noise::signed_unit(self.seed, spec.fingerprint()) + 1.0) / 2.0;
        if u < self.launch_failure_rate {
            Some(FaultKind::LaunchFailure)
        } else if u < self.launch_failure_rate + self.invalid_rate {
            Some(FaultKind::InvalidReport)
        } else if u < self.launch_failure_rate + self.invalid_rate + self.nan_rate {
            Some(FaultKind::NanReport)
        } else {
            None
        }
    }

    /// Corrupts a clean report the way a [`FaultKind::NanReport`] fault
    /// does: the report stays `valid` but every derived rate is NaN. The
    /// underlying totals (FLOPs, energy) are poisoned too, so aggregation
    /// that recomputes rates from totals — [`SimReport::sequence`],
    /// [`SimReport::repeated`] — propagates the NaN instead of laundering
    /// it away. Time stays finite: a corrupted counter readout still has
    /// a real wall-clock duration.
    pub fn poison_rates(report: &mut SimReport) {
        report.ppw = f64::NAN;
        report.gflops = f64::NAN;
        report.energy_j = f64::NAN;
        report.avg_power_w = f64::NAN;
        report.flops_total = f64::NAN;
        report.constant_power_w = f64::NAN;
        report.static_power_w = f64::NAN;
        report.dynamic_power_w = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RefAccess;

    fn spec(name: &str) -> KernelExecSpec {
        KernelExecSpec {
            name: name.into(),
            grid_blocks: 64,
            grid_x_blocks: 8,
            threads_per_block: 128,
            points_per_thread: 1,
            serial_steps_per_block: 1,
            flops_total: 1e6,
            elem_bytes: 8,
            shared_bytes_per_block: 0,
            l1_avail_bytes: 128 * 1024,
            num_refs: 1,
            refs: vec![RefAccess::streaming("x", 10_000, 128, false)],
        }
    }

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::new(7);
        for i in 0..50 {
            assert_eq!(plan.fault_for(&spec(&format!("k{i}"))), None);
        }
    }

    #[test]
    fn forced_fault_beats_rates() {
        let plan = FaultPlan::new(7).force("bad", FaultKind::NanReport);
        assert_eq!(plan.fault_for(&spec("bad")), Some(FaultKind::NanReport));
        assert_eq!(plan.fault_for(&spec("good")), None);
    }

    #[test]
    fn rates_are_deterministic_and_roughly_proportional() {
        let plan = FaultPlan::new(42).with_rates(0.2, 0.2, 0.2);
        let verdicts: Vec<Option<FaultKind>> =
            (0..500).map(|i| plan.fault_for(&spec(&format!("k{i}")))).collect();
        let again: Vec<Option<FaultKind>> =
            (0..500).map(|i| plan.fault_for(&spec(&format!("k{i}")))).collect();
        assert_eq!(verdicts, again, "same plan, same spec, same verdict");
        let count = |k: FaultKind| verdicts.iter().filter(|v| **v == Some(k)).count();
        for kind in [
            FaultKind::LaunchFailure,
            FaultKind::InvalidReport,
            FaultKind::NanReport,
        ] {
            let c = count(kind);
            assert!((50..=150).contains(&c), "{kind}: {c}/500 at rate 0.2");
        }
        assert!(verdicts.iter().filter(|v| v.is_none()).count() >= 100);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(1).with_rates(0.3, 0.0, 0.0);
        let b = FaultPlan::new(2).with_rates(0.3, 0.0, 0.0);
        let verdict = |p: &FaultPlan| -> Vec<bool> {
            (0..200)
                .map(|i| p.fault_for(&spec(&format!("k{i}"))).is_some())
                .collect()
        };
        assert_ne!(verdict(&a), verdict(&b));
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn out_of_range_rate_panics() {
        let _ = FaultPlan::new(0).with_rates(1.5, 0.0, 0.0);
    }
}
