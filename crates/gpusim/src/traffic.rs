//! The memory-hierarchy traffic model.
//!
//! For every reference we derive, from the tile-level footprints supplied
//! by the compiler:
//!
//! 1. **L1 residency** — if the summed per-step footprints of the cached
//!    (`L1_set`) references exceed the L1 carve-out, they thrash and
//!    re-request data from L2 (this is the dominant failure mode of the
//!    `32^d` default tiling on 4-D kernels, Fig. 10/11);
//! 2. **L1→L2 sector counts** — the Nsight
//!    `lts__t_sectors_srcunit_tex_op_read` proxy of Fig. 9; uncoalesced
//!    references pay one 32-byte sector per access;
//! 3. **L2 filtering** — redundant requests (beyond each datum's
//!    compulsory fetch) hit in L2 with a probability given by how much of
//!    the *concurrent wave working set* fits in L2 (block scheduling is
//!    x-first, so a reference invariant along grid-x is shared by a whole
//!    wave);
//! 4. **DRAM traffic** with a row-buffer efficiency factor driven by the
//!    contiguous run length along the fastest array dimension (long
//!    x-tiles stream whole DRAM bursts; short ones waste activations).

use crate::arch::GpuArch;
use crate::occupancy::Occupancy;
use crate::spec::KernelExecSpec;

/// Traffic of one reference.
#[derive(Debug, Clone, PartialEq)]
pub struct RefTrafficReport {
    /// Reference name.
    pub name: String,
    /// Element requests from L1/SMs to L2 over the whole launch.
    pub l2_request_elems: f64,
    /// 32-byte L2 sectors read over the whole launch.
    pub l2_sectors: f64,
    /// Bytes fetched from DRAM.
    pub dram_bytes: f64,
    /// DRAM row-buffer efficiency in `(0, 1]`.
    pub row_efficiency: f64,
    /// Whether this reference thrashes the L1 carve-out.
    pub l1_thrashed: bool,
}

/// Aggregated traffic of a launch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Total L2 sectors read (the Fig. 9 metric).
    pub l2_sectors_read: f64,
    /// Total L2 sectors written.
    pub l2_sectors_written: f64,
    /// Total bytes moved through L2 (reads + writes).
    pub l2_bytes: f64,
    /// Total bytes moved to/from DRAM.
    pub dram_bytes: f64,
    /// DRAM bytes weighted by inverse row efficiency (time cost).
    pub dram_time_bytes: f64,
    /// DRAM bytes weighted by activation overhead `2 − row_eff`
    /// (energy cost).
    pub dram_energy_bytes: f64,
    /// Bytes served by shared memory.
    pub shared_bytes: f64,
    /// Bytes served by L1 hits.
    pub l1_hit_bytes: f64,
    /// Whether any cached reference thrashes L1.
    pub l1_thrash: bool,
    /// Estimated L2 hit fraction for redundant requests.
    pub l2_hit_fraction: f64,
    /// Per-reference breakdown.
    pub per_ref: Vec<RefTrafficReport>,
}

/// Runs the traffic model.
pub fn model(arch: &GpuArch, spec: &KernelExecSpec, occ: &Occupancy) -> TrafficReport {
    let elem = spec.elem_bytes as f64;
    let sector = arch.sector_bytes() as f64;
    let blocks = spec.grid_blocks.max(0) as f64;

    // --- L1 residency of the cached set -------------------------------
    let cached_step_bytes: f64 = spec
        .refs
        .iter()
        .filter(|r| !r.staged_shared)
        .map(|r| r.tile_footprint_elems as f64 * elem)
        .sum();
    // Each resident block competes for the same L1.
    let resident_blocks = occ.blocks_per_sm.max(1) as f64;
    let l1_pressure = cached_step_bytes * resident_blocks / (spec.l1_avail_bytes.max(1) as f64);
    let l1_thrash = l1_pressure > 1.0;

    // --- concurrent wave working set (for L2 filtering) ---------------
    let wave_blocks = (arch.sm_count as f64 * occ.blocks_per_sm as f64).min(blocks).max(1.0);
    let grid_x = spec.grid_x_blocks.max(1) as f64;
    let mut wave_ws_bytes = 0.0;
    for r in &spec.refs {
        let wx = if r.varies_block_x {
            grid_x.min(wave_blocks)
        } else {
            1.0
        };
        let wy = if r.varies_block_y {
            (wave_blocks / grid_x).ceil().max(1.0)
        } else {
            1.0
        };
        let distinct = (wx * wy).min(wave_blocks);
        let ws = (r.tile_footprint_elems as f64 * elem * distinct)
            .min(r.total_footprint_elems as f64 * elem);
        wave_ws_bytes += ws;
    }
    let l2_hit_fraction = if wave_ws_bytes <= 0.0 {
        1.0
    } else {
        (arch.l2_bytes as f64 / wave_ws_bytes).clamp(0.0, 1.0)
    };

    // --- per-reference traffic -----------------------------------------
    let mut per_ref = Vec::with_capacity(spec.refs.len());
    let mut l2_sectors_read = 0.0;
    let mut l2_sectors_written = 0.0;
    let mut dram_bytes = 0.0;
    let mut dram_time_bytes = 0.0;
    let mut dram_energy_bytes = 0.0;
    let mut shared_bytes = 0.0;
    let mut l1_hit_bytes = 0.0;

    let mut arrays_seen: Vec<&str> = Vec::new();
    for r in &spec.refs {
        let accesses = r.accesses_per_block.max(0) as f64;
        let footprint = r.block_footprint_elems.max(0) as f64;
        // Only the first reference group of an array pays its compulsory
        // DRAM traffic; sibling groups (stencil halos) touch the same
        // lines and are satisfied by L2.
        let first_of_array = if arrays_seen.contains(&r.name.as_str()) {
            false
        } else {
            arrays_seen.push(&r.name);
            true
        };

        // Requests that escape the SM towards L2.
        let (request_elems, thrashed) = if r.staged_shared {
            // Cooperative staging loads each element of the block footprint
            // exactly once; reuse is served by shared memory.
            shared_bytes += (accesses - footprint).max(0.0) * elem * blocks;
            (footprint, false)
        } else if !l1_thrash {
            // L1-resident: each distinct element is fetched once per block;
            // the remaining accesses hit in L1.
            l1_hit_bytes += (accesses - footprint).max(0.0) * elem * blocks;
            (footprint, false)
        } else {
            // Thrashing: re-fetches scale with the overcommit ratio, capped
            // by the raw access count.
            let refetch = (footprint * l1_pressure).min(accesses);
            l1_hit_bytes += (accesses - refetch).max(0.0) * elem * blocks;
            (refetch.max(footprint), true)
        };
        let total_requests = request_elems * blocks;

        // Sector counting: coalesced warps move elem-packed sectors;
        // uncoalesced accesses pay a whole sector each.
        let sectors = if r.coalesced {
            total_requests * elem / sector
        } else {
            total_requests
        };
        if r.is_write {
            l2_sectors_written += sectors;
        } else {
            l2_sectors_read += sectors;
        }

        // DRAM: compulsory once per datum (bounded by what is actually
        // requested, and claimed by the array's first group); redundant
        // requests miss L2 with probability (1 − hit).
        let compulsory = if first_of_array {
            (r.total_footprint_elems.max(0) as f64).min(total_requests)
        } else {
            0.0
        };
        let redundant = (total_requests - compulsory).max(0.0);
        let miss_elems = compulsory + redundant * (1.0 - l2_hit_fraction);
        let amplification = if r.coalesced { 1.0 } else { sector / elem };
        let ref_dram_bytes = miss_elems * elem * amplification;

        let row_eff = ((r.contiguous_x_elems.max(1) as f64 * elem)
            / arch.dram_row_chunk_bytes)
            .clamp(1.0 / 16.0, 1.0);
        dram_bytes += ref_dram_bytes;
        dram_time_bytes += ref_dram_bytes / row_eff.max(0.25);
        dram_energy_bytes += ref_dram_bytes * (2.0 - row_eff);

        per_ref.push(RefTrafficReport {
            name: r.name.clone(),
            l2_request_elems: total_requests,
            l2_sectors: sectors,
            dram_bytes: ref_dram_bytes,
            row_efficiency: row_eff,
            l1_thrashed: thrashed,
        });
    }

    // Register spills add local-memory traffic through L1/L2 on every
    // point iteration: a thread covering many points keeps reloading its
    // spilled working set (the classic local-memory performance cliff).
    if occ.register_spill {
        let spilled = occ
            .regs_per_thread
            .saturating_sub(occ.regs_granted)
            .min(32) as f64;
        let spill_bytes = spec.total_threads() as f64
            * spec.points_per_thread.max(1) as f64
            * spilled
            * 4.0
            * 2.0; // store + reload
        l2_sectors_read += spill_bytes / sector;
        dram_time_bytes += spill_bytes * 0.25;
        dram_energy_bytes += spill_bytes * 0.25;
        dram_bytes += spill_bytes * 0.25;
    }

    let l2_bytes = (l2_sectors_read + l2_sectors_written) * sector;
    TrafficReport {
        l2_sectors_read,
        l2_sectors_written,
        l2_bytes,
        dram_bytes,
        dram_time_bytes,
        dram_energy_bytes,
        shared_bytes,
        l1_hit_bytes,
        l1_thrash,
        l2_hit_fraction,
        per_ref,
    }
}

/// Convenience: total sectors for use as the Fig. 9 proxy.
pub fn sectors_read(report: &TrafficReport) -> u64 {
    report.l2_sectors_read.max(0.0) as u64
}

#[allow(clippy::too_many_arguments)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;
    use crate::spec::RefAccess;

    fn base_spec() -> KernelExecSpec {
        KernelExecSpec {
            name: "traffic".into(),
            grid_blocks: 1000,
            grid_x_blocks: 100,
            threads_per_block: 256,
            points_per_thread: 1,
            serial_steps_per_block: 10,
            flops_total: 1e9,
            elem_bytes: 8,
            shared_bytes_per_block: 0,
            l1_avail_bytes: 96 * 1024,
            num_refs: 1,
            refs: vec![],
        }
    }

    fn run(spec: &KernelExecSpec) -> TrafficReport {
        let arch = GpuArch::ga100();
        let occ = occupancy(&arch, spec);
        model(&arch, spec, &occ)
    }

    #[test]
    fn resident_ref_requests_footprint_once_per_block() {
        let mut spec = base_spec();
        spec.refs = vec![RefAccess {
            name: "A".into(),
            staged_shared: false,
            tile_footprint_elems: 1024,
            block_footprint_elems: 1024,
            total_footprint_elems: 1_000_000,
            accesses_per_block: 1024 * 50,
            coalesced: true,
            contiguous_x_elems: 128,
            varies_block_x: true,
            varies_block_y: true,
            is_write: false,
        }];
        let t = run(&spec);
        assert!(!t.l1_thrash);
        let expected_requests = 1024.0 * 1000.0;
        assert!((t.per_ref[0].l2_request_elems - expected_requests).abs() < 1.0);
        // 49/50 of accesses hit in L1.
        assert!(t.l1_hit_bytes > 0.0);
        // Coalesced FP64: 4 elements per 32B sector.
        assert!((t.per_ref[0].l2_sectors - expected_requests / 4.0).abs() < 1.0);
    }

    #[test]
    fn uncoalesced_pays_sector_per_access() {
        let mut spec = base_spec();
        let mk = |coalesced| RefAccess {
            name: "A".into(),
            staged_shared: false,
            tile_footprint_elems: 1024,
            block_footprint_elems: 1024,
            total_footprint_elems: 1_000_000,
            accesses_per_block: 1024,
            coalesced,
            contiguous_x_elems: 128,
            varies_block_x: true,
            varies_block_y: true,
            is_write: false,
        };
        spec.refs = vec![mk(true)];
        let coalesced = run(&spec);
        spec.refs = vec![mk(false)];
        let uncoalesced = run(&spec);
        assert!(
            uncoalesced.l2_sectors_read > 3.9 * coalesced.l2_sectors_read,
            "FP64: 4x sector amplification"
        );
        assert!(uncoalesced.dram_bytes > coalesced.dram_bytes);
    }

    #[test]
    fn thrashing_inflates_requests() {
        let mut spec = base_spec();
        let mk = |tile_elems: i64| RefAccess {
            name: "A".into(),
            staged_shared: false,
            tile_footprint_elems: tile_elems,
            block_footprint_elems: tile_elems,
            total_footprint_elems: 100_000_000,
            accesses_per_block: tile_elems * 100,
            coalesced: true,
            contiguous_x_elems: 128,
            varies_block_x: true,
            varies_block_y: true,
            is_write: false,
        };
        // 4 KiB per step: fits.
        spec.refs = vec![mk(512)];
        let small = run(&spec);
        assert!(!small.l1_thrash);
        // 2 MiB per step: thrashes the 96 KiB carve-out.
        spec.refs = vec![mk(256 * 1024)];
        let big = run(&spec);
        assert!(big.l1_thrash);
        assert!(big.per_ref[0].l1_thrashed);
        let small_ratio = small.per_ref[0].l2_request_elems / (512.0 * 1000.0);
        let big_ratio = big.per_ref[0].l2_request_elems / (256.0 * 1024.0 * 1000.0);
        assert!(big_ratio > 2.0 * small_ratio);
    }

    #[test]
    fn staged_refs_serve_reuse_from_shared() {
        let mut spec = base_spec();
        spec.shared_bytes_per_block = 8 * 1024;
        spec.refs = vec![RefAccess {
            name: "In".into(),
            staged_shared: true,
            tile_footprint_elems: 1024,
            block_footprint_elems: 10_240,
            total_footprint_elems: 1_000_000,
            accesses_per_block: 10_240 * 32,
            coalesced: true,
            contiguous_x_elems: 32,
            varies_block_x: false,
            varies_block_y: true,
            is_write: false,
        }];
        let t = run(&spec);
        assert!(t.shared_bytes > 0.0);
        // Global-side requests are just the block footprint.
        assert!((t.per_ref[0].l2_request_elems - 10_240.0 * 1000.0).abs() < 1.0);
    }

    #[test]
    fn l2_filtering_bounds_dram_by_compulsory() {
        let mut spec = base_spec();
        // Tiny working set: wave ws fits easily in 40 MiB L2.
        spec.refs = vec![RefAccess {
            name: "B".into(),
            staged_shared: false,
            tile_footprint_elems: 512,
            block_footprint_elems: 512,
            total_footprint_elems: 4096, // shared across blocks
            accesses_per_block: 512,
            coalesced: true,
            contiguous_x_elems: 512,
            varies_block_x: false,
            varies_block_y: false,
            is_write: false,
        }];
        let t = run(&spec);
        assert!((t.l2_hit_fraction - 1.0).abs() < 1e-9);
        // DRAM sees only the compulsory 4096 elements.
        assert!((t.per_ref[0].dram_bytes - 4096.0 * 8.0).abs() < 1.0);
    }

    #[test]
    fn row_efficiency_rewards_long_contiguous_tiles() {
        let mut spec = base_spec();
        let mk = |contig: i64| RefAccess {
            name: "A".into(),
            staged_shared: false,
            tile_footprint_elems: 4096,
            block_footprint_elems: 4096,
            total_footprint_elems: 1_000_000_000,
            accesses_per_block: 4096,
            coalesced: true,
            contiguous_x_elems: contig,
            varies_block_x: true,
            varies_block_y: true,
            is_write: false,
        };
        spec.refs = vec![mk(16)]; // 128 B runs: poor
        let short = run(&spec);
        spec.refs = vec![mk(256)]; // 2 KiB runs: full bursts
        let long = run(&spec);
        assert!(short.dram_time_bytes > long.dram_time_bytes);
        assert!(short.dram_energy_bytes > long.dram_energy_bytes);
        assert!((long.per_ref[0].row_efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn writes_count_in_written_sectors() {
        let mut spec = base_spec();
        let mut w = RefAccess::streaming("out", 1_000_000, 1024, true);
        w.is_write = true;
        spec.refs = vec![w];
        let t = run(&spec);
        assert!(t.l2_sectors_written > 0.0);
        assert_eq!(t.l2_sectors_read, 0.0);
    }

    #[test]
    fn spills_add_traffic() {
        let mut spec = base_spec();
        spec.threads_per_block = 1024; // only 64 regs/thread affordable
        spec.refs = vec![RefAccess::streaming("a", 1_000_000, 1024, true)];
        let base = run(&spec);
        spec.points_per_thread = 128;
        spec.num_refs = 8;
        let spilled = run(&spec);
        assert!(spilled.l2_sectors_read > base.l2_sectors_read);
    }
}
