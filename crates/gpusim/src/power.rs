//! The power model: constant + static + dynamic decomposition (Fig. 1 of
//! the paper) with a TDP cap modelling automatic DVFS.
//!
//! Dynamic power charges each activity its energy: arithmetic, L2
//! transfers (this is what makes the Fig. 9 sector↔power correlation
//! emerge for BLAS3 kernels), DRAM transfers weighted by row-activation
//! overhead, and shared/L1 hits. When the modelled power exceeds the TDP,
//! the driver lowers the clocks (`P ∝ f³`), stretching execution time by
//! the cube root of the overshoot — the "automatic power scaling" EATSS
//! exploits.

use crate::arch::GpuArch;
use crate::metrics::SimReport;
use crate::noise;
use crate::occupancy::Occupancy;
use crate::spec::KernelExecSpec;
use crate::timing::TimingBreakdown;
use crate::traffic::TrafficReport;

/// Jitter amplitude on execution time (residual measurement variation).
const TIME_JITTER: f64 = 0.02;
/// Jitter amplitude on average power.
const POWER_JITTER: f64 = 0.015;

/// Combines timing and traffic into the final observable report.
pub fn finish(
    arch: &GpuArch,
    spec: &KernelExecSpec,
    occ: &Occupancy,
    traffic: &TrafficReport,
    timing: TimingBreakdown,
) -> SimReport {
    if !timing.valid {
        return SimReport::invalid(&spec.name);
    }
    let fp = spec.fingerprint();
    let mut time_s = timing.total_s * noise::jitter(fp, TIME_SALT, TIME_JITTER);

    let active = occ.active_fraction(arch);
    let constant_power_w = arch.power.p_constant_w;
    let static_power_w = arch.power.p_static_base_w + arch.power.p_static_active_w * active;

    let gflops_rate = spec.flops_total / 1e9 / time_s;
    let l2_gbps = traffic.l2_bytes / 1e9 / time_s;
    let dram_energy_gbps = traffic.dram_energy_bytes / 1e9 / time_s;
    let onchip_gbps = (traffic.shared_bytes + traffic.l1_hit_bytes) / 1e9 / time_s;

    let mut dynamic_power_w = arch.power.e_flop_j_per_gflop * gflops_rate
        + arch.power.e_l2_j_per_gb * l2_gbps
        + arch.power.e_dram_j_per_gb * dram_energy_gbps
        + arch.power.e_shared_j_per_gb * onchip_gbps
        + arch.power.p_sm_dynamic_w * occ.occupancy * active * timing.compute_fraction();

    let mut total = constant_power_w + static_power_w + dynamic_power_w;
    let mut throttled = false;
    if total > arch.tdp_w {
        // DVFS: scale frequency until power meets the cap. Dynamic power
        // scales ~f³, so the frequency (and throughput) drop is the cube
        // root of the required dynamic reduction.
        let dyn_budget = (arch.tdp_w - constant_power_w - static_power_w).max(1.0);
        let scale = (dyn_budget / dynamic_power_w).clamp(0.05, 1.0);
        let freq_scale = scale.cbrt();
        time_s /= freq_scale;
        dynamic_power_w *= scale;
        total = constant_power_w + static_power_w + dynamic_power_w;
        throttled = true;
    }

    let avg_power_w = (total * noise::jitter(fp, POWER_SALT, POWER_JITTER)).max(0.0);
    let energy_j = avg_power_w * time_s;
    let gflops = spec.flops_total / 1e9 / time_s;

    SimReport {
        name: spec.name.clone(),
        valid: true,
        time_s,
        avg_power_w,
        constant_power_w,
        static_power_w,
        dynamic_power_w,
        energy_j,
        flops_total: spec.flops_total,
        gflops,
        ppw: if avg_power_w > 0.0 {
            gflops / avg_power_w
        } else {
            0.0
        },
        l2_sectors_read: traffic.l2_sectors_read.max(0.0) as u64,
        l2_sectors_written: traffic.l2_sectors_written.max(0.0) as u64,
        dram_bytes: traffic.dram_bytes,
        occupancy: occ.occupancy,
        active_sm_fraction: active,
        l1_thrash: traffic.l1_thrash,
        dvfs_throttled: throttled,
    }
}

/// Salt for the execution-time jitter stream.
const TIME_SALT: u64 = 0x7115_0000_0000_0001;
/// Salt for the power jitter stream (distinct from [`TIME_SALT`]).
const POWER_SALT: u64 = 0x90e2_0000_0000_0002;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;
    use crate::spec::RefAccess;
    use crate::timing;
    use crate::traffic;

    fn spec(flops: f64, grid: i64) -> KernelExecSpec {
        KernelExecSpec {
            name: "p".into(),
            grid_blocks: grid,
            grid_x_blocks: grid.max(1),
            threads_per_block: 256,
            points_per_thread: 1,
            serial_steps_per_block: 10,
            flops_total: flops,
            elem_bytes: 8,
            shared_bytes_per_block: 0,
            l1_avail_bytes: 96 * 1024,
            num_refs: 2,
            refs: vec![RefAccess::streaming("a", 10_000_000, 4096, true)],
        }
    }

    fn run(s: &KernelExecSpec) -> SimReport {
        let arch = GpuArch::ga100();
        let occ = occupancy(&arch, s);
        let tr = traffic::model(&arch, s, &occ);
        let tm = timing::model(&arch, s, &occ, &tr);
        finish(&arch, s, &occ, &tr, tm)
    }

    #[test]
    fn power_components_sum_to_total() {
        let r = run(&spec(1e12, 50_000));
        let sum = r.constant_power_w + r.static_power_w + r.dynamic_power_w;
        // avg_power carries ±1.5% jitter around the component sum.
        assert!((r.avg_power_w - sum).abs() / sum < 0.02);
    }

    #[test]
    fn bigger_problems_draw_more_power_until_tdp() {
        // Fig. 1: power grows with utilization, then saturates.
        let small = run(&spec(1e9, 32));
        let large = run(&spec(5e13, 500_000));
        assert!(large.avg_power_w > small.avg_power_w);
        assert!(large.avg_power_w <= GpuArch::ga100().tdp_w * 1.02);
    }

    #[test]
    fn tdp_cap_throttles_and_stretches_time() {
        // A compute-saturating kernel at near-peak FP64 exceeds the 250 W
        // PCIe cap: e_flop·9700 + SM dynamic + static + constant > TDP.
        let s = spec(1e15, 500_000);
        let r = run(&s);
        assert!(r.dvfs_throttled);
        assert!(r.avg_power_w <= GpuArch::ga100().tdp_w * 1.02);
    }

    #[test]
    fn idle_like_launch_is_dominated_by_constant_and_static() {
        let r = run(&spec(1e6, 1));
        assert!(r.dynamic_power_w < r.constant_power_w + r.static_power_w);
    }

    #[test]
    fn energy_equals_power_times_time() {
        let r = run(&spec(1e12, 10_000));
        assert!((r.energy_j - r.avg_power_w * r.time_s).abs() < 1e-9);
    }

    #[test]
    fn invalid_timing_propagates() {
        let arch = GpuArch::ga100();
        let s = spec(1e12, 100);
        let occ = occupancy(&arch, &s);
        let tr = traffic::model(&arch, &s, &occ);
        let r = finish(&arch, &s, &occ, &tr, TimingBreakdown::invalid());
        assert!(!r.valid);
    }
}
