//! A set-associative LRU cache simulator.
//!
//! The analytic traffic model (see [`crate::traffic`]) reasons about cache
//! residency with footprint arithmetic. This trace-driven simulator is the
//! ground truth used by the test suite to validate those residency rules
//! at small scale (e.g. that a tiled matmul's inner working set stops
//! missing once it fits).

use std::fmt;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was fetched (and possibly evicted another).
    Miss,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (zero if no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.1}% hit rate)",
            self.accesses,
            self.hits,
            self.misses,
            100.0 * self.hit_rate()
        )
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use eatss_gpusim::{AccessOutcome, CacheSim};
///
/// let mut cache = CacheSim::new(1024, 64, 4);
/// assert_eq!(cache.access(0), AccessOutcome::Miss);
/// assert_eq!(cache.access(8), AccessOutcome::Hit); // same 64 B line
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    num_sets: u64,
    ways: usize,
    /// Per set: resident line tags ordered most-recently-used first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a cache of `size_bytes` with `line_bytes` lines and `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, `line_bytes` is not a power of
    /// two, or the geometry is inconsistent (`size` not divisible by
    /// `line × ways`).
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(size_bytes > 0 && line_bytes > 0 && ways > 0, "zero geometry");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        let lines = size_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(ways as u64) && lines >= ways as u64,
            "size/line/ways geometry inconsistent"
        );
        let num_sets = lines / ways as u64;
        CacheSim {
            line_bytes,
            num_sets,
            ways,
            sets: vec![Vec::with_capacity(ways); num_sets as usize],
            stats: CacheStats::default(),
        }
    }

    /// A fully-associative cache of `size_bytes`.
    pub fn fully_associative(size_bytes: u64, line_bytes: u64) -> Self {
        let ways = (size_bytes / line_bytes) as usize;
        CacheSim::new(size_bytes, line_bytes, ways.max(1))
    }

    /// Accesses a byte address; returns hit or miss and updates LRU state.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.stats.accesses += 1;
        let line = addr / self.line_bytes;
        let set_idx = (line % self.num_sets) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.stats.hits += 1;
            AccessOutcome::Hit
        } else {
            if set.len() == self.ways {
                set.pop(); // evict LRU
            }
            set.insert(0, line);
            self.stats.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// Accesses a whole element of `elem_bytes` starting at `addr`
    /// (touches each spanned line once).
    pub fn access_element(&mut self, addr: u64, elem_bytes: u64) -> u64 {
        let first = addr / self.line_bytes;
        let last = (addr + elem_bytes.max(1) - 1) / self.line_bytes;
        let mut misses = 0;
        for line in first..=last {
            if self.access(line * self.line_bytes) == AccessOutcome::Miss {
                misses += 1;
            }
        }
        misses
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drops all cached lines and counters.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_sets * self.ways as u64 * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_locality_within_a_line() {
        let mut c = CacheSim::new(4096, 64, 4);
        assert_eq!(c.access(100), AccessOutcome::Miss);
        for off in 64..128 {
            assert_eq!(c.access(off), AccessOutcome::Hit, "addr {off}");
        }
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1 set, 2 ways, 64 B lines.
        let mut c = CacheSim::new(128, 64, 2);
        c.access(0); // line 0
        c.access(64); // line 1 (set is the same: only 1 set)
        c.access(0); // touch line 0 → line 1 is LRU
        c.access(128); // line 2 evicts line 1
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(64), AccessOutcome::Miss, "line 1 was evicted");
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        // Direct-mapped, 2 sets: lines 0 and 2 conflict.
        let mut c = CacheSim::new(128, 64, 1);
        c.access(0);
        c.access(128);
        assert_eq!(c.access(0), AccessOutcome::Miss, "conflict evicted line 0");
        // Fully associative cache of the same size has no such conflict.
        let mut fa = CacheSim::fully_associative(128, 64);
        fa.access(0);
        fa.access(128);
        assert_eq!(fa.access(0), AccessOutcome::Hit);
    }

    #[test]
    fn stats_are_consistent() {
        let mut c = CacheSim::new(1024, 32, 2);
        for i in 0..1000u64 {
            c.access(i * 7 % 4096);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.accesses, 1000);
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0);
    }

    #[test]
    fn working_set_that_fits_only_pays_compulsory_misses() {
        let mut c = CacheSim::fully_associative(8192, 64);
        // 4 KiB working set, swept 10 times.
        let lines = 4096 / 64;
        for _ in 0..10 {
            for l in 0..lines {
                c.access(l * 64);
            }
        }
        assert_eq!(c.stats().misses, lines, "only compulsory misses");
    }

    #[test]
    fn working_set_that_thrashes_misses_every_sweep() {
        // LRU + sequential sweep larger than capacity = 0 reuse hits.
        let mut c = CacheSim::fully_associative(4096, 64);
        let lines = 8192 / 64;
        for _ in 0..5 {
            for l in 0..lines {
                c.access(l * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn element_access_spanning_lines() {
        let mut c = CacheSim::new(4096, 64, 4);
        // 8-byte element fully inside one line.
        assert_eq!(c.access_element(0, 8), 1);
        // element straddling a line boundary touches two lines.
        c.flush();
        assert_eq!(c.access_element(60, 8), 2);
    }

    #[test]
    fn flush_and_reset() {
        let mut c = CacheSim::new(1024, 64, 4);
        c.access(0);
        assert_eq!(c.resident_lines(), 1);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.resident_lines(), 1);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.access(0), AccessOutcome::Miss);
    }

    #[test]
    fn capacity_accessor() {
        let c = CacheSim::new(16 * 1024, 128, 8);
        assert_eq!(c.capacity_bytes(), 16 * 1024);
        assert_eq!(c.line_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_panics() {
        let _ = CacheSim::new(1024, 48, 2);
    }

    /// The premise of the paper: tiling a matmul-like sweep reduces cache
    /// misses once the tile working set fits.
    #[test]
    fn tiling_reduces_misses_ground_truth() {
        let n: u64 = 64;
        let elem = 8u64;
        let run = |tile: u64| -> u64 {
            let mut c = CacheSim::fully_associative(16 * 1024, 64);
            // B[k][j] swept for every i: untiled = column-major misses.
            for jj in (0..n).step_by(tile as usize) {
                for i in 0..n {
                    let _ = i;
                    for j in jj..(jj + tile).min(n) {
                        for k in 0..n {
                            c.access((k * n + j) * elem);
                        }
                    }
                }
            }
            c.stats().misses
        };
        let untiled = run(n); // one big "tile"
        let tiled = run(8);
        assert!(
            tiled < untiled / 2,
            "tiled={tiled} untiled={untiled}: tiling must cut misses"
        );
    }
}
