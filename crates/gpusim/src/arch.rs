//! GPU architecture descriptions (Tables I and III of the paper).

use std::fmt;

/// Per-activity energy and static-power coefficients of the power model.
///
/// Units: `e_*` are joules per unit of work (per GFLOP, per GB moved at
/// the respective level); `p_*` are watts.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCoefficients {
    /// Board/host constant power (always drawn while the GPU is on).
    pub p_constant_w: f64,
    /// Leakage floor (static power at idle).
    pub p_static_base_w: f64,
    /// Additional leakage when all SMs are active (scales with the active
    /// SM fraction — clocks and power-gating react to utilization).
    pub p_static_active_w: f64,
    /// Dynamic SM power at full issue rate (scales with compute
    /// utilization × active fraction).
    pub p_sm_dynamic_w: f64,
    /// Energy per GFLOP of executed arithmetic (J/GFLOP).
    pub e_flop_j_per_gflop: f64,
    /// Energy per GB moved between L1/SM and L2 (J/GB).
    pub e_l2_j_per_gb: f64,
    /// Energy per GB moved between L2 and DRAM (J/GB); poor row-buffer
    /// locality is charged up to 2× this value.
    pub e_dram_j_per_gb: f64,
    /// Energy per GB served from shared memory (J/GB).
    pub e_shared_j_per_gb: f64,
}

/// A GPU architecture: the model-input parameters of Table I plus the
/// testbed characteristics of Table III and the power/timing calibration
/// constants of the simulator.
///
/// # Examples
///
/// ```
/// use eatss_gpusim::GpuArch;
///
/// let ga100 = GpuArch::ga100();
/// assert_eq!(ga100.sm_count, 108);
/// assert_eq!(ga100.threads_per_warp, 32);
/// assert_eq!(ga100.l1_shared_bytes, 192 * 1024);
/// let xavier = GpuArch::xavier();
/// assert!(xavier.tdp_w < ga100.tdp_w);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArch {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// `T_P_B`: maximum threads per thread block.
    pub max_threads_per_block: u32,
    /// `T_P_W`: threads per warp.
    pub threads_per_warp: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// `R_P_S` / `R_P_B`: 32-bit registers per SM and per block.
    pub regs_per_sm: u32,
    /// `R_P_T`: maximum registers per thread.
    pub regs_per_thread: u32,
    /// `L1_SH`: combined L1 + shared memory per SM, in bytes.
    pub l1_shared_bytes: u64,
    /// Maximum shared memory per block, in bytes.
    pub max_shared_per_block: u64,
    /// L2 cache size, in bytes.
    pub l2_bytes: u64,
    /// Global memory, in bytes.
    pub dram_bytes: u64,
    /// Peak FP32 throughput, GFLOP/s.
    pub peak_fp32_gflops: f64,
    /// Peak FP64 throughput, GFLOP/s (no tensor cores).
    pub peak_fp64_gflops: f64,
    /// Peak FP64 tensor-core throughput, GFLOP/s (vendor libraries only).
    pub peak_fp64_tensor_gflops: f64,
    /// DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// Aggregate L2 bandwidth, GB/s.
    pub l2_bw_gbs: f64,
    /// Aggregate shared-memory bandwidth, GB/s.
    pub shared_bw_gbs: f64,
    /// Thermal design power, watts (the DVFS cap).
    pub tdp_w: f64,
    /// Kernel launch overhead, seconds.
    pub launch_overhead_s: f64,
    /// Cost of one block-wide barrier (`__syncthreads`), seconds.
    pub barrier_overhead_s: f64,
    /// DRAM row-buffer chunk: contiguous run length (bytes) needed for
    /// full burst efficiency.
    pub dram_row_chunk_bytes: f64,
    /// Time constant of the clock-boost / thermal power ramp, seconds:
    /// short kernels average close to idle power, long ones reach the
    /// steady state (the Fig. 1 size effect).
    pub power_ramp_tau_s: f64,
    /// Power-model coefficients.
    pub power: PowerCoefficients,
}

impl GpuArch {
    /// The NVIDIA GA100 (A100-40GB) server GPU of Table III, loaded from
    /// the committed `profiles/ga100.json` device profile (pinned
    /// field-equal to the historical hard-wired values by test).
    pub fn ga100() -> Self {
        crate::profile::DeviceProfile::builtin("ga100")
            .expect("ga100 is a committed builtin profile")
            .into_arch()
    }

    /// The NVIDIA Jetson AGX Xavier embedded GPU of Table III, loaded
    /// from the committed `profiles/xavier.json` device profile.
    pub fn xavier() -> Self {
        crate::profile::DeviceProfile::builtin("xavier")
            .expect("xavier is a committed builtin profile")
            .into_arch()
    }

    /// Peak arithmetic throughput for the given element width (GFLOP/s):
    /// 4 bytes → FP32, 8 bytes → FP64 (§IV-I: DP peak is a fraction of SP).
    pub fn peak_gflops(&self, elem_bytes: u8) -> f64 {
        if elem_bytes >= 8 {
            self.peak_fp64_gflops
        } else {
            self.peak_fp32_gflops
        }
    }

    /// Idle power floor: constant + static-base components.
    pub fn idle_power_w(&self) -> f64 {
        self.power.p_constant_w + self.power.p_static_base_w
    }

    /// Size of one L2 sector, bytes (NVIDIA GPUs move 32-byte sectors).
    pub fn sector_bytes(&self) -> u64 {
        32
    }

    /// Maximum concurrently resident blocks across the whole device for a
    /// kernel using `threads` threads, `regs` registers/thread and
    /// `shared` bytes of shared memory per block (ignoring grid size).
    pub fn device_block_capacity(&self, blocks_per_sm: u32) -> u64 {
        self.sm_count as u64 * blocks_per_sm as u64
    }
}

/// The historical hard-wired constructors, kept verbatim so tests can pin
/// the committed profiles field-equal to the original literal values.
#[cfg(test)]
pub(crate) mod legacy {
    use super::{GpuArch, PowerCoefficients};

    /// The GA100 literal exactly as it shipped before profile loading.
    pub fn ga100() -> GpuArch {
        GpuArch {
            name: "GA100".to_owned(),
            sm_count: 108,
            max_threads_per_block: 1024,
            threads_per_warp: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            regs_per_sm: 65_536,
            regs_per_thread: 255,
            l1_shared_bytes: 192 * 1024,
            max_shared_per_block: 48 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            dram_bytes: 40 * 1024 * 1024 * 1024,
            peak_fp32_gflops: 19_500.0,
            peak_fp64_gflops: 9_700.0,
            peak_fp64_tensor_gflops: 19_500.0,
            dram_bw_gbs: 1_555.0,
            l2_bw_gbs: 5_000.0,
            shared_bw_gbs: 18_000.0,
            tdp_w: 250.0,
            launch_overhead_s: 4.0e-6,
            barrier_overhead_s: 1.2e-7,
            dram_row_chunk_bytes: 1024.0,
            power_ramp_tau_s: 0.015,
            power: PowerCoefficients {
                p_constant_w: 38.0,
                p_static_base_w: 22.0,
                p_static_active_w: 42.0,
                p_sm_dynamic_w: 70.0,
                e_flop_j_per_gflop: 9.0e-3,
                e_l2_j_per_gb: 2.2e-2,
                e_dram_j_per_gb: 5.5e-2,
                e_shared_j_per_gb: 1.5e-3,
            },
        }
    }

    /// The Xavier literal exactly as it shipped before profile loading.
    pub fn xavier() -> GpuArch {
        GpuArch {
            name: "Xavier".to_owned(),
            sm_count: 8,
            max_threads_per_block: 1024,
            threads_per_warp: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            regs_per_sm: 65_536,
            regs_per_thread: 255,
            l1_shared_bytes: 128 * 1024,
            max_shared_per_block: 48 * 1024,
            l2_bytes: 512 * 1024,
            dram_bytes: 32 * 1024 * 1024 * 1024,
            peak_fp32_gflops: 1_410.0,
            peak_fp64_gflops: 44.0,
            peak_fp64_tensor_gflops: 44.0,
            dram_bw_gbs: 137.0,
            l2_bw_gbs: 450.0,
            shared_bw_gbs: 1_600.0,
            tdp_w: 30.0,
            launch_overhead_s: 8.0e-6,
            barrier_overhead_s: 2.5e-7,
            dram_row_chunk_bytes: 1024.0,
            power_ramp_tau_s: 0.010,
            power: PowerCoefficients {
                p_constant_w: 4.5,
                p_static_base_w: 2.5,
                p_static_active_w: 5.0,
                p_sm_dynamic_w: 8.0,
                e_flop_j_per_gflop: 1.0e-1,
                e_l2_j_per_gb: 3.0e-2,
                e_dram_j_per_gb: 7.0e-2,
                e_shared_j_per_gb: 3.0e-3,
            },
        }
    }
}

impl fmt::Display for GpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SMs, {:.1} TFLOP/s FP64, {:.0} GB/s DRAM, {:.0} W TDP)",
            self.name,
            self.sm_count,
            self.peak_fp64_gflops / 1000.0,
            self.dram_bw_gbs,
            self.tdp_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let ga = GpuArch::ga100();
        assert_eq!(ga.sm_count, 108);
        assert_eq!(ga.l2_bytes, 40 * 1024 * 1024);
        assert_eq!(ga.max_shared_per_block, 48 * 1024);
        assert_eq!(ga.regs_per_sm, 65_536);
        assert!((ga.peak_fp64_gflops - 9700.0).abs() < 1e-9);
        assert!((ga.tdp_w - 250.0).abs() < 1e-9);
        let xa = GpuArch::xavier();
        assert_eq!(xa.sm_count, 8);
        assert_eq!(xa.l2_bytes, 512 * 1024);
        assert!((xa.peak_fp64_gflops - 44.0).abs() < 1e-9);
        assert!((xa.tdp_w - 30.0).abs() < 1e-9);
    }

    #[test]
    fn table_i_values() {
        let ga = GpuArch::ga100();
        assert_eq!(ga.max_threads_per_block, 1024);
        assert_eq!(ga.threads_per_warp, 32);
        assert_eq!(ga.regs_per_thread, 255);
        assert_eq!(ga.l1_shared_bytes, 192 * 1024);
    }

    #[test]
    fn precision_selects_peak() {
        let ga = GpuArch::ga100();
        assert_eq!(ga.peak_gflops(4), ga.peak_fp32_gflops);
        assert_eq!(ga.peak_gflops(8), ga.peak_fp64_gflops);
    }

    #[test]
    fn display_mentions_name_and_sms() {
        let s = GpuArch::xavier().to_string();
        assert!(s.contains("Xavier"));
        assert!(s.contains("8 SMs"));
    }

    #[test]
    fn device_capacity_multiplies() {
        assert_eq!(GpuArch::ga100().device_block_capacity(2), 216);
    }
}
