//! SM occupancy: how many blocks fit on an SM and how well the device is
//! filled.

use crate::arch::GpuArch;
use crate::spec::KernelExecSpec;

/// Occupancy analysis of one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM (≥ 1 is required for the kernel to run;
    /// 0 means the block cannot fit — an invalid launch).
    pub blocks_per_sm: u32,
    /// Fraction of the SM's thread slots occupied by resident blocks.
    pub occupancy: f64,
    /// SMs with at least one block in the first wave.
    pub active_sms: u32,
    /// Number of full device waves the grid needs.
    pub waves: f64,
    /// Utilization loss from the partially-filled last wave
    /// (1.0 = no loss).
    pub tail_efficiency: f64,
    /// Registers per thread the kernel wants.
    pub regs_per_thread: u32,
    /// Registers per thread actually granted after the launchability cap.
    pub regs_granted: u32,
    /// Whether the estimated register demand exceeds the granted budget
    /// (spilling to local memory).
    pub register_spill: bool,
}

impl Occupancy {
    /// Fraction of the device's SMs that have work in the first wave.
    pub fn active_fraction(&self, arch: &GpuArch) -> f64 {
        self.active_sms as f64 / arch.sm_count as f64
    }
}

/// Computes the occupancy of a launch on an architecture.
///
/// Blocks per SM are limited by threads, registers, shared memory and the
/// architectural block cap, exactly like the CUDA occupancy calculator.
pub fn occupancy(arch: &GpuArch, spec: &KernelExecSpec) -> Occupancy {
    let tpb = spec.threads_per_block.max(1) as u32;
    let regs_wanted = spec.regs_per_thread();
    // The compiler caps per-thread registers so that one block can always
    // launch (like `-maxrregcount`); demand beyond the cap spills to
    // local memory.
    let affordable = (arch.regs_per_sm / tpb.min(arch.regs_per_sm)).max(1);
    let reg_cap = arch.regs_per_thread.min(affordable);
    let register_spill = regs_wanted > reg_cap;
    let regs = regs_wanted.min(reg_cap).max(1);

    let by_threads = arch.max_threads_per_sm / tpb.min(arch.max_threads_per_sm);
    let by_regs = arch.regs_per_sm / (tpb.saturating_mul(regs)).max(1);
    let by_shared = if spec.shared_bytes_per_block == 0 {
        arch.max_blocks_per_sm
    } else {
        // Shared memory per SM is what the L1 carve-out leaves.
        let shared_avail = arch.l1_shared_bytes.saturating_sub(spec.l1_avail_bytes);
        (shared_avail / spec.shared_bytes_per_block as u64) as u32
    };
    let blocks_per_sm = by_threads
        .min(by_regs)
        .min(by_shared)
        .min(arch.max_blocks_per_sm);

    if blocks_per_sm == 0 {
        return Occupancy {
            blocks_per_sm: 0,
            occupancy: 0.0,
            active_sms: 0,
            waves: f64::INFINITY,
            tail_efficiency: 0.0,
            regs_per_thread: regs_wanted,
            regs_granted: regs,
            register_spill,
        };
    }

    let occupancy_frac =
        (blocks_per_sm as f64 * tpb as f64 / arch.max_threads_per_sm as f64).min(1.0);
    let grid = spec.grid_blocks.max(1) as f64;
    let device_capacity = (arch.sm_count * blocks_per_sm) as f64;
    let waves = grid / device_capacity;
    let active_sms = (spec.grid_blocks.max(0) as u32).min(arch.sm_count);
    // Beyond one wave, the partially-filled last wave still takes a full
    // wave of time. (Grids below one wave are covered by the active-SM
    // fraction instead.)
    let tail_efficiency = if waves <= 1.0 {
        1.0
    } else {
        (waves / waves.ceil()).clamp(0.0, 1.0)
    };
    Occupancy {
        blocks_per_sm,
        occupancy: occupancy_frac,
        active_sms,
        waves,
        tail_efficiency,
        regs_per_thread: regs_wanted,
        regs_granted: regs,
        register_spill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RefAccess;

    fn spec(tpb: i64, grid: i64, shared: u32) -> KernelExecSpec {
        KernelExecSpec {
            name: "occ".into(),
            grid_blocks: grid,
            grid_x_blocks: grid,
            threads_per_block: tpb,
            points_per_thread: 1,
            serial_steps_per_block: 1,
            flops_total: 1e6,
            elem_bytes: 4,
            shared_bytes_per_block: shared,
            l1_avail_bytes: 96 * 1024,
            num_refs: 3,
            refs: vec![RefAccess::streaming("a", 1000, 10, true)],
        }
    }

    #[test]
    fn thread_limit_caps_blocks() {
        let arch = GpuArch::ga100();
        let o = occupancy(&arch, &spec(1024, 10_000, 0));
        assert_eq!(o.blocks_per_sm, 2); // 2048 / 1024
        assert!((o.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_blocks() {
        let arch = GpuArch::ga100();
        // 96 KiB carve-out leaves 96 KiB shared; 40 KiB blocks → 2 per SM.
        let o = occupancy(&arch, &spec(128, 10_000, 40 * 1024));
        assert_eq!(o.blocks_per_sm, 2);
        // 100 KiB blocks cannot fit at all.
        let o = occupancy(&arch, &spec(128, 10_000, 100 * 1024));
        assert_eq!(o.blocks_per_sm, 0);
        assert_eq!(o.occupancy, 0.0);
        assert_eq!(o.tail_efficiency, 0.0);
    }

    #[test]
    fn small_grid_activates_few_sms() {
        let arch = GpuArch::ga100();
        let o = occupancy(&arch, &spec(256, 4, 0));
        assert_eq!(o.active_sms, 4);
        assert!(o.active_fraction(&arch) < 0.05);
        assert!(o.waves < 1.0);
    }

    #[test]
    fn tail_efficiency_penalizes_partial_waves() {
        let arch = GpuArch::ga100();
        // capacity with 256 threads: 8 blocks/SM (max_blocks cap is 32,
        // threads: 2048/256 = 8) → 864 blocks per wave.
        let full = occupancy(&arch, &spec(256, 864, 0));
        assert!((full.tail_efficiency - 1.0).abs() < 1e-9);
        let partial = occupancy(&arch, &spec(256, 865, 0));
        assert!(partial.tail_efficiency < 0.51);
    }

    #[test]
    fn register_pressure_reduces_occupancy() {
        let arch = GpuArch::ga100();
        let mut s = spec(1024, 10_000, 0);
        s.elem_bytes = 8;
        s.num_refs = 10; // 20 + 80*2... large register demand
        let o = occupancy(&arch, &s);
        // Register demand caps blocks per SM, but one block always fits.
        assert!(o.blocks_per_sm >= 1);
        assert_eq!(
            o.blocks_per_sm,
            (65_536 / (1024 * o.regs_granted).max(1)).max(1)
        );
    }

    #[test]
    fn spill_is_flagged() {
        let arch = GpuArch::ga100();
        // 1024-thread blocks can only afford 64 registers per thread;
        // a many-reference FP64 kernel with an unrolled point window
        // demands more and spills.
        let mut s = spec(1024, 100, 0);
        s.points_per_thread = 128;
        s.elem_bytes = 8;
        s.num_refs = 8;
        let o = occupancy(&arch, &s);
        assert!(o.regs_per_thread > 64);
        assert!(o.register_spill);
    }
}
