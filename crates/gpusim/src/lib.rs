//! A mechanistic GPU performance / power / energy model — the hardware
//! stand-in for the NVIDIA GA100 and Jetson AGX Xavier testbeds of the
//! EATSS paper (CGO 2024).
//!
//! The paper measures tiled CUDA kernels on real GPUs with `nvidia-smi`,
//! `tegrastats` and Nsight Compute. This crate replaces the hardware with
//! an analytic model whose terms respond to tile-size choices through the
//! same mechanisms the paper argues drive the measurements:
//!
//! * **occupancy** ([`mod@occupancy`]) — threads/registers/shared-memory limits
//!   per SM, wave quantization and tail effects;
//! * **memory traffic** ([`traffic`]) — per-reference L1 residency and
//!   thrashing, L1→L2 sector counts (the `lts__t_sectors..read` proxy of
//!   Fig. 9), L2 capacity filtering against the concurrent working set,
//!   DRAM traffic with row-buffer (burst) efficiency, and coalescing;
//! * **timing** ([`timing`]) — roofline-style max of compute / L2 / DRAM
//!   phases plus staging-synchronization and launch overheads;
//! * **power** ([`power`]) — constant + static + dynamic decomposition
//!   (Fig. 1) with per-activity energies and a TDP cap that models the
//!   automatic DVFS behaviour the paper exploits;
//! * a validation-scale set-associative LRU [`cache`] simulator used to
//!   sanity-check the analytic residency rules in tests.
//!
//! All "measurement noise" is deterministic ([`noise`]), so experiments
//! are reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use eatss_gpusim::{Gpu, GpuArch, KernelExecSpec, RefAccess};
//!
//! let gpu = Gpu::new(GpuArch::ga100());
//! let spec = KernelExecSpec {
//!     name: "axpy".into(),
//!     grid_blocks: 4096,
//!     grid_x_blocks: 4096,
//!     threads_per_block: 256,
//!     points_per_thread: 1,
//!     serial_steps_per_block: 1,
//!     flops_total: 2.0 * 1e6,
//!     elem_bytes: 8,
//!     shared_bytes_per_block: 0,
//!     l1_avail_bytes: 128 * 1024,
//!     num_refs: 2,
//!     refs: vec![
//!         RefAccess::streaming("x", 1_000_000, 256, true),
//!         RefAccess::streaming("y", 1_000_000, 256, false),
//!     ],
//! };
//! let report = gpu.simulate(&spec);
//! assert!(report.time_s > 0.0);
//! assert!(report.avg_power_w > 0.0);
//! assert!(report.energy_j > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod cache;
pub mod fault;
pub mod metrics;
pub mod noise;
pub mod occupancy;
pub mod power;
pub mod profile;
pub mod spec;
pub mod stats;
pub mod timing;
pub mod traffic;
pub mod validation;

pub use arch::{GpuArch, PowerCoefficients};
pub use cache::{AccessOutcome, CacheSim, CacheStats};
pub use fault::{FaultKind, FaultPlan, SimFault};
pub use metrics::SimReport;
pub use occupancy::{occupancy, Occupancy};
pub use profile::{DeviceProfile, ProfileError};
pub use spec::{KernelExecSpec, RefAccess, SpecError};
pub use timing::TimingBreakdown;
pub use traffic::{RefTrafficReport, TrafficReport};

/// A GPU device: an architecture plus the simulation entry points.
#[derive(Debug, Clone)]
pub struct Gpu {
    arch: GpuArch,
    fault_plan: Option<FaultPlan>,
}

impl Gpu {
    /// Creates a device for the given architecture.
    pub fn new(arch: GpuArch) -> Self {
        Gpu {
            arch,
            fault_plan: None,
        }
    }

    /// Creates a device whose launches are subject to an injected
    /// [`FaultPlan`] (robustness testing).
    pub fn with_faults(arch: GpuArch, plan: FaultPlan) -> Self {
        Gpu {
            arch,
            fault_plan: Some(plan),
        }
    }

    /// Installs or clears the fault plan on an existing device.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The device's architecture description.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Simulates one kernel launch, surfacing injected launch failures
    /// as errors.
    ///
    /// # Errors
    ///
    /// Returns [`SimFault`] when the active [`FaultPlan`] injects a
    /// [`FaultKind::LaunchFailure`] for this launch. The other fault
    /// kinds corrupt the report instead of failing the call.
    pub fn try_simulate(&self, spec: &KernelExecSpec) -> Result<SimReport, SimFault> {
        let mut span = eatss_trace::span("sim", "launch");
        if span.is_active() {
            span.arg("kernel", spec.name.as_str());
            span.arg("grid_blocks", spec.grid_blocks);
            span.arg("threads_per_block", spec.threads_per_block);
        }
        let injected = self
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.fault_for(spec));
        if let Some(kind) = injected {
            if eatss_trace::collecting() {
                eatss_trace::counter_add("sim.faults_injected", 1);
                eatss_trace::instant(
                    "sim",
                    "fault",
                    vec![
                        ("kind", eatss_trace::ArgValue::Str(format!("{kind:?}"))),
                        ("kernel", eatss_trace::ArgValue::Str(spec.name.clone())),
                    ],
                );
                span.arg("fault", format!("{kind:?}"));
            }
        }
        match injected {
            Some(FaultKind::LaunchFailure) => {
                return Err(SimFault {
                    kernel: spec.name.clone(),
                    kind: FaultKind::LaunchFailure,
                })
            }
            Some(FaultKind::InvalidReport) => return Ok(SimReport::invalid(&spec.name)),
            Some(FaultKind::NanReport) => {
                let mut report = self.simulate_clean(spec);
                FaultPlan::poison_rates(&mut report);
                return Ok(report);
            }
            None => {}
        }
        let report = self.simulate_clean(spec);
        if span.is_active() {
            span.arg("time_us", report.time_s * 1e6);
            span.arg("avg_power_w", report.avg_power_w);
        }
        Ok(report)
    }

    /// Simulates one kernel launch. Injected launch failures degrade to
    /// an invalid report; use [`Gpu::try_simulate`] to observe them.
    pub fn simulate(&self, spec: &KernelExecSpec) -> SimReport {
        self.try_simulate(spec)
            .unwrap_or_else(|fault| SimReport::invalid(&fault.kernel))
    }

    fn simulate_clean(&self, spec: &KernelExecSpec) -> SimReport {
        // A structurally impossible launch gets no energy number: the
        // report is invalid, never a silently-priced fiction.
        if let Err(err) = spec.validate() {
            if eatss_trace::collecting() {
                eatss_trace::counter_add("sim.invalid_specs", 1);
                eatss_trace::instant(
                    "sim",
                    "invalid_spec",
                    vec![("reason", eatss_trace::ArgValue::Str(err.to_string()))],
                );
            }
            return SimReport::invalid(&spec.name);
        }
        // Degenerate-but-representable specs are clamped onto the
        // consistent envelope; consistent specs pass through untouched.
        if !spec.is_saturated() {
            return self.simulate_stages(&spec.saturated());
        }
        self.simulate_stages(spec)
    }

    fn simulate_stages(&self, spec: &KernelExecSpec) -> SimReport {
        let occ = {
            let _stage = eatss_trace::span("sim", "occupancy");
            occupancy::occupancy(&self.arch, spec)
        };
        let traffic = {
            let _stage = eatss_trace::span("sim", "traffic");
            traffic::model(&self.arch, spec, &occ)
        };
        let timing = {
            let _stage = eatss_trace::span("sim", "timing");
            timing::model(&self.arch, spec, &occ, &traffic)
        };
        let _stage = eatss_trace::span("sim", "power");
        power::finish(&self.arch, spec, &occ, &traffic, timing)
    }

    /// Simulates a sequence of kernel launches (a program such as 2mm),
    /// aggregating time, energy and traffic; the average power is the
    /// time-weighted mean.
    pub fn simulate_program(&self, specs: &[KernelExecSpec]) -> SimReport {
        let reports: Vec<SimReport> = specs.iter().map(|s| self.simulate(s)).collect();
        SimReport::sequence(&reports)
    }

    /// [`Gpu::simulate_program`], surfacing the first injected launch
    /// failure as an error.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gpu::try_simulate`].
    pub fn try_simulate_program(&self, specs: &[KernelExecSpec]) -> Result<SimReport, SimFault> {
        let reports: Vec<SimReport> = specs
            .iter()
            .map(|s| self.try_simulate(s))
            .collect::<Result<_, _>>()?;
        Ok(SimReport::sequence(&reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_like_spec(tile_x: i64) -> KernelExecSpec {
        let n: i64 = 2000;
        let tiles = n / tile_x;
        KernelExecSpec {
            name: format!("gemm{tile_x}"),
            grid_blocks: tiles * tiles,
            grid_x_blocks: tiles,
            threads_per_block: 1024.min(tile_x * tile_x),
            points_per_thread: ((tile_x * tile_x) as f64 / 1024.0).ceil() as i64,
            serial_steps_per_block: n / 16,
            flops_total: 2.0 * (n as f64).powi(3),
            elem_bytes: 8,
            shared_bytes_per_block: (tile_x * 16 * 8) as u32,
            l1_avail_bytes: 96 * 1024,
            num_refs: 3,
            refs: vec![
                RefAccess {
                    name: "C".into(),
                    staged_shared: false,
                    tile_footprint_elems: tile_x * tile_x,
                    block_footprint_elems: tile_x * tile_x,
                    total_footprint_elems: n * n,
                    accesses_per_block: tile_x * tile_x * (n / 16),
                    coalesced: true,
                    contiguous_x_elems: tile_x,
                    varies_block_x: true,
                    varies_block_y: true,
                    is_write: true,
                },
                RefAccess {
                    name: "A".into(),
                    staged_shared: true,
                    tile_footprint_elems: tile_x * 16,
                    block_footprint_elems: tile_x * n,
                    total_footprint_elems: n * n,
                    accesses_per_block: tile_x * tile_x * n,
                    coalesced: true,
                    contiguous_x_elems: 16,
                    varies_block_x: false,
                    varies_block_y: true,
                    is_write: false,
                },
                RefAccess {
                    name: "B".into(),
                    staged_shared: false,
                    tile_footprint_elems: 16 * tile_x,
                    block_footprint_elems: n * tile_x,
                    total_footprint_elems: n * n,
                    accesses_per_block: tile_x * tile_x * n,
                    coalesced: true,
                    contiguous_x_elems: tile_x,
                    varies_block_x: true,
                    varies_block_y: false,
                    is_write: false,
                },
            ],
        }
    }

    #[test]
    fn simulate_produces_positive_sane_metrics() {
        let gpu = Gpu::new(GpuArch::ga100());
        let r = gpu.simulate(&gemm_like_spec(32));
        assert!(r.time_s > 0.0 && r.time_s.is_finite());
        assert!(r.avg_power_w > 10.0, "at least idle power");
        assert!(r.avg_power_w <= GpuArch::ga100().tdp_w + 1e-9, "TDP capped");
        assert!(r.energy_j > 0.0);
        assert!(r.gflops > 0.0);
        assert!((r.ppw - r.gflops / r.avg_power_w).abs() < 1e-9);
        assert!(r.l2_sectors_read > 0);
    }

    #[test]
    fn program_aggregation_sums_time_and_energy() {
        let gpu = Gpu::new(GpuArch::ga100());
        let a = gpu.simulate(&gemm_like_spec(32));
        let b = gpu.simulate(&gemm_like_spec(64));
        let seq = gpu.simulate_program(&[gemm_like_spec(32), gemm_like_spec(64)]);
        assert!((seq.time_s - (a.time_s + b.time_s)).abs() < 1e-12);
        assert!((seq.energy_j - (a.energy_j + b.energy_j)).abs() < 1e-9);
        let w_avg = seq.energy_j / seq.time_s;
        assert!((seq.avg_power_w - w_avg).abs() < 1e-9);
    }

    #[test]
    fn xavier_is_slower_and_lower_power_than_ga100() {
        let spec = gemm_like_spec(32);
        let ga = Gpu::new(GpuArch::ga100()).simulate(&spec);
        let xa = Gpu::new(GpuArch::xavier()).simulate(&spec);
        assert!(xa.time_s > ga.time_s);
        assert!(xa.avg_power_w < ga.avg_power_w);
    }

    #[test]
    fn determinism() {
        let gpu = Gpu::new(GpuArch::ga100());
        let a = gpu.simulate(&gemm_like_spec(48));
        let b = gpu.simulate(&gemm_like_spec(48));
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
        assert_eq!(a.avg_power_w.to_bits(), b.avg_power_w.to_bits());
    }

    #[test]
    fn impossible_spec_yields_invalid_report_not_energy() {
        let gpu = Gpu::new(GpuArch::ga100());
        let mut spec = gemm_like_spec(32);
        spec.grid_blocks = 0;
        let r = gpu.simulate(&spec);
        assert!(!r.valid, "a zero-block launch must not be priced");
        let mut nan = gemm_like_spec(32);
        nan.flops_total = f64::NAN;
        assert!(!gpu.simulate(&nan).valid);
        let mut neg = gemm_like_spec(32);
        neg.refs[0].accesses_per_block = -1;
        assert!(!gpu.simulate(&neg).valid);
    }

    #[test]
    fn inconsistent_spec_is_saturated_before_pricing() {
        let gpu = Gpu::new(GpuArch::ga100());
        let mut spec = gemm_like_spec(32);
        // A contiguity run longer than the whole array.
        spec.refs[1].contiguous_x_elems = spec.refs[1].total_footprint_elems * 10;
        let implicit = gpu.simulate(&spec);
        let explicit = gpu.simulate(&spec.saturated());
        assert!(implicit.valid);
        assert_eq!(implicit.time_s.to_bits(), explicit.time_s.to_bits());
        assert_eq!(implicit.energy_j.to_bits(), explicit.energy_j.to_bits());
        // Consistent specs take the zero-copy path and are untouched.
        let clean = gemm_like_spec(32);
        assert!(clean.is_saturated());
        let a = gpu.simulate(&clean);
        let b = gpu.simulate(&clean.saturated());
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    }

    #[test]
    fn injected_launch_failure_errors_and_degrades() {
        let plan = FaultPlan::new(3).force("gemm32", FaultKind::LaunchFailure);
        let gpu = Gpu::with_faults(GpuArch::ga100(), plan);
        let spec = gemm_like_spec(32);
        let err = gpu.try_simulate(&spec).unwrap_err();
        assert_eq!(err.kind, FaultKind::LaunchFailure);
        assert_eq!(err.kernel, "gemm32");
        // The infallible entry point degrades to an invalid report.
        let r = gpu.simulate(&spec);
        assert!(!r.valid && r.time_s.is_infinite());
        // Unrelated launches are untouched.
        assert!(gpu.try_simulate(&gemm_like_spec(64)).unwrap().valid);
    }

    #[test]
    fn injected_nan_report_stays_valid_but_poisoned() {
        let plan = FaultPlan::new(3).force("gemm32", FaultKind::NanReport);
        let gpu = Gpu::with_faults(GpuArch::ga100(), plan);
        let r = gpu.try_simulate(&gemm_like_spec(32)).unwrap();
        assert!(r.valid, "a NaN report masquerades as a valid measurement");
        assert!(r.ppw.is_nan() && r.gflops.is_nan() && r.energy_j.is_nan());
        assert!(r.time_s.is_finite());
    }

    #[test]
    fn injected_invalid_report_and_program_propagation() {
        let plan = FaultPlan::new(3).force("gemm32", FaultKind::InvalidReport);
        let gpu = Gpu::with_faults(GpuArch::ga100(), plan);
        let r = gpu.try_simulate(&gemm_like_spec(32)).unwrap();
        assert!(!r.valid);
        // One invalid launch poisons the whole program sequence.
        let seq = gpu.simulate_program(&[gemm_like_spec(64), gemm_like_spec(32)]);
        assert!(!seq.valid);
        // try_simulate_program surfaces launch failures as errors.
        let mut gpu2 = gpu.clone();
        gpu2.set_fault_plan(Some(
            FaultPlan::new(3).force("gemm64", FaultKind::LaunchFailure),
        ));
        let err = gpu2
            .try_simulate_program(&[gemm_like_spec(32), gemm_like_spec(64)])
            .unwrap_err();
        assert_eq!(err.kernel, "gemm64");
        // Clearing the plan restores clean simulation.
        gpu2.set_fault_plan(None);
        assert!(gpu2.simulate(&gemm_like_spec(64)).valid);
    }
}
