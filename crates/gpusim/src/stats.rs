//! Statistics helpers used by the experiment harness: Pearson
//! correlation (Fig. 9), medians/percentiles (Fig. 7 tables),
//! Freedman–Diaconis histogram binning (Fig. 11).

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (interpolated for even lengths; 0 for an empty slice).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile `p ∈ [0, 100]` (0 for an empty slice).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Pearson's correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample is degenerate (zero variance or fewer
/// than two points).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use eatss_gpusim::stats::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.1, 4.0, 6.2, 7.9];
/// assert!(pearson(&x, &y) > 0.99);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs equal-length samples");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Freedman–Diaconis bin width: `2·IQR·n^(-1/3)` — the estimator the
/// paper uses for the Fig. 11 histograms "to take data variability and
/// data sizes into account".
pub fn fd_bin_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 1.0;
    }
    let iqr = percentile(xs, 75.0) - percentile(xs, 25.0);
    let w = 2.0 * iqr / (xs.len() as f64).cbrt();
    if w <= 0.0 {
        // Degenerate IQR: fall back to the full range or unity.
        let range = percentile(xs, 100.0) - percentile(xs, 0.0);
        if range > 0.0 {
            range / (xs.len() as f64).sqrt().max(1.0)
        } else {
            1.0
        }
    } else {
        w
    }
}

/// One histogram bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of samples inside.
    pub count: usize,
}

/// Histogram with Freedman–Diaconis bin widths.
pub fn fd_histogram(xs: &[f64]) -> Vec<Bin> {
    if xs.is_empty() {
        return Vec::new();
    }
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = fd_bin_width(xs);
    let nbins = (((hi - lo) / width).ceil() as usize).clamp(1, 512);
    let width = (hi - lo) / nbins as f64;
    let mut bins: Vec<Bin> = (0..nbins)
        .map(|i| Bin {
            lo: lo + i as f64 * width.max(f64::MIN_POSITIVE),
            hi: lo + (i + 1) as f64 * width.max(f64::MIN_POSITIVE),
            count: 0,
        })
        .collect();
    for &x in xs {
        let idx = if width > 0.0 {
            (((x - lo) / width) as usize).min(nbins - 1)
        } else {
            0
        };
        bins[idx].count += 1;
    }
    bins
}

/// Geometric mean of positive samples (0 if empty; panics on
/// non-positive input in debug builds).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive inputs");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_percentile() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        let odd = [5.0, 1.0, 3.0];
        assert!((median(&odd) - 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_anti_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [10.0, 20.0, 30.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // Deterministic pseudo-random pairing.
        let x: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let y: Vec<f64> = (0..1000).map(|i| ((i * 61) % 103) as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.15);
    }

    #[test]
    fn fd_width_shrinks_with_sample_count() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..10_000).map(|i| (i % 10) as f64).collect();
        assert!(fd_bin_width(&large) < fd_bin_width(&small));
    }

    #[test]
    fn fd_histogram_covers_all_samples() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let bins = fd_histogram(&xs);
        assert!(!bins.is_empty());
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, xs.len());
        // Bins are contiguous.
        for w in bins.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-9);
        }
    }

    #[test]
    fn fd_histogram_degenerate_inputs() {
        assert!(fd_histogram(&[]).is_empty());
        let constant = vec![5.0; 100];
        let bins = fd_histogram(&constant);
        assert_eq!(bins.iter().map(|b| b.count).sum::<usize>(), 100);
    }

    #[test]
    fn geomean_of_ratios() {
        let xs = [2.0, 8.0];
        assert!((geomean(&xs) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
