//! Kernel execution specifications — the simulator's input language.
//!
//! A [`KernelExecSpec`] summarizes what a tiled GPU kernel does:
//! launch geometry, arithmetic, and one [`RefAccess`] per distinct array
//! reference describing footprints, access counts, coalescing and
//! block-level sharing. The PPCG stand-in (`eatss-ppcg`) lowers a tiled
//! affine kernel to this form.

/// Per-reference memory behaviour within one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct RefAccess {
    /// Array name (diagnostics only).
    pub name: String,
    /// Staged through software-managed shared memory (the `SH_set` of
    /// §IV-E) rather than relying on the L1 cache.
    pub staged_shared: bool,
    /// Distinct elements touched per block *per serial tile step* (the
    /// inner working set that must stay L1/shared resident).
    pub tile_footprint_elems: i64,
    /// Distinct elements touched per block over its whole lifetime.
    pub block_footprint_elems: i64,
    /// Distinct elements touched by the whole kernel.
    pub total_footprint_elems: i64,
    /// Dynamic element accesses issued by all threads of one block.
    pub accesses_per_block: i64,
    /// Whether consecutive threads access consecutive elements (coalesced
    /// along the thread-x dimension).
    pub coalesced: bool,
    /// Contiguous run length (elements) along the fastest-varying array
    /// dimension covered by one tile — drives DRAM row-buffer efficiency.
    pub contiguous_x_elems: i64,
    /// Whether different block-x indices touch different data.
    pub varies_block_x: bool,
    /// Whether different block-y indices touch different data.
    pub varies_block_y: bool,
    /// Whether the reference is written.
    pub is_write: bool,
}

impl RefAccess {
    /// Convenience constructor for a purely streaming reference (each
    /// block touches its own contiguous chunk exactly once) — useful for
    /// tests and simple kernels.
    pub fn streaming(name: &str, total_elems: i64, per_block: i64, coalesced: bool) -> Self {
        RefAccess {
            name: name.to_owned(),
            staged_shared: false,
            tile_footprint_elems: per_block,
            block_footprint_elems: per_block,
            total_footprint_elems: total_elems,
            accesses_per_block: per_block,
            coalesced,
            contiguous_x_elems: per_block,
            varies_block_x: true,
            varies_block_y: true,
            is_write: false,
        }
    }

    /// Dynamic accesses per element of block footprint (the reuse factor
    /// the block extracts from on-chip memories).
    pub fn reuse_factor(&self) -> f64 {
        if self.block_footprint_elems == 0 {
            0.0
        } else {
            self.accesses_per_block as f64 / self.block_footprint_elems as f64
        }
    }
}

/// Everything the simulator needs to know about one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelExecSpec {
    /// Kernel name (diagnostics and noise seeding).
    pub name: String,
    /// Number of thread blocks launched.
    pub grid_blocks: i64,
    /// Extent of the fastest-varying (x) grid dimension in blocks; block
    /// ids are scheduled x-first, so this controls which tiles coexist in
    /// a wave. Use `grid_blocks` for 1-D grids.
    pub grid_x_blocks: i64,
    /// Threads per block (≤ `T_P_B`).
    pub threads_per_block: i64,
    /// Iteration points each thread covers per serial step (PPCG's
    /// point-loop multiplicity when the tile exceeds the block).
    pub points_per_thread: i64,
    /// Serial tile steps executed by each block (e.g. `K / T_k` for
    /// matmul) — each ends with a block barrier when staging is used.
    pub serial_steps_per_block: i64,
    /// Total floating-point operations of the launch.
    pub flops_total: f64,
    /// Element width in bytes (4 = FP32, 8 = FP64).
    pub elem_bytes: u8,
    /// Shared memory consumed per block, bytes.
    pub shared_bytes_per_block: u32,
    /// L1 cache available per SM under the chosen carve-out, bytes.
    pub l1_avail_bytes: u64,
    /// Number of distinct-cache-line references (register-pressure model,
    /// §IV-G).
    pub num_refs: u32,
    /// Per-reference access descriptions.
    pub refs: Vec<RefAccess>,
}

impl KernelExecSpec {
    /// Estimated registers per thread: a fixed base plus per-reference
    /// address/operand registers scaled by precision (§IV-G, §IV-I), plus
    /// accumulators for multi-point threads. Clamped to the value range
    /// real compilers produce.
    pub fn regs_per_thread(&self) -> u32 {
        let fp_factor = if self.elem_bytes >= 8 { 2 } else { 1 };
        let base = 16u32;
        let per_ref = 3 * self.num_refs * fp_factor;
        // Point loops are unrolled up to a compiler window (~16 points):
        // each unrolled point holds value temporaries plus per-reference
        // address registers.
        let unrolled = self.points_per_thread.clamp(0, 16) as u32;
        let acc = 2 * unrolled * fp_factor;
        let addr = if self.points_per_thread > 1 {
            2 * self.num_refs
        } else {
            0
        };
        (base + per_ref + acc + addr).min(512)
    }

    /// Total dynamic threads of the launch.
    pub fn total_threads(&self) -> i64 {
        self.grid_blocks.saturating_mul(self.threads_per_block)
    }

    /// A stable 64-bit fingerprint of the launch (noise seeding).
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::noise::FNV_OFFSET;
        for b in self.name.as_bytes() {
            h = crate::noise::fnv_step(h, *b as u64);
        }
        for v in [
            self.grid_blocks as u64,
            self.threads_per_block as u64,
            self.points_per_thread as u64,
            self.serial_steps_per_block as u64,
            self.flops_total.to_bits(),
            self.elem_bytes as u64,
            self.shared_bytes_per_block as u64,
            self.l1_avail_bytes,
        ] {
            h = crate::noise::fnv_step(h, v);
        }
        for r in &self.refs {
            for v in [
                r.tile_footprint_elems as u64,
                r.block_footprint_elems as u64,
                r.accesses_per_block as u64,
                r.coalesced as u64,
                r.staged_shared as u64,
            ] {
                h = crate::noise::fnv_step(h, v);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> KernelExecSpec {
        KernelExecSpec {
            name: "t".into(),
            grid_blocks: 10,
            grid_x_blocks: 5,
            threads_per_block: 128,
            points_per_thread: 2,
            serial_steps_per_block: 4,
            flops_total: 1e6,
            elem_bytes: 8,
            shared_bytes_per_block: 1024,
            l1_avail_bytes: 64 * 1024,
            num_refs: 3,
            refs: vec![RefAccess::streaming("a", 1000, 100, true)],
        }
    }

    #[test]
    fn regs_scale_with_precision_and_refs() {
        let mut s = small_spec();
        let fp64 = s.regs_per_thread();
        s.elem_bytes = 4;
        let fp32 = s.regs_per_thread();
        assert!(fp64 > fp32);
        s.num_refs = 6;
        assert!(s.regs_per_thread() > fp32);
    }

    #[test]
    fn regs_are_clamped() {
        let mut s = small_spec();
        s.points_per_thread = 100_000;
        s.num_refs = 40;
        assert!(s.regs_per_thread() <= 512);
        // The unroll window caps the point-dependent term.
        let mut t = small_spec();
        t.points_per_thread = 16;
        let at_window = t.regs_per_thread();
        t.points_per_thread = 1_000;
        assert_eq!(t.regs_per_thread(), at_window);
    }

    #[test]
    fn streaming_constructor_is_self_consistent() {
        let r = RefAccess::streaming("x", 1_000_000, 256, true);
        assert_eq!(r.block_footprint_elems, 256);
        assert_eq!(r.accesses_per_block, 256);
        assert!((r.reuse_factor() - 1.0).abs() < 1e-12);
        assert!(!r.is_write);
    }

    #[test]
    fn reuse_factor_handles_zero_footprint() {
        let mut r = RefAccess::streaming("x", 0, 0, true);
        r.block_footprint_elems = 0;
        assert_eq!(r.reuse_factor(), 0.0);
    }

    #[test]
    fn fingerprint_changes_with_fields() {
        let a = small_spec();
        let mut b = small_spec();
        b.grid_blocks = 11;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = small_spec();
        c.refs[0].coalesced = false;
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), small_spec().fingerprint());
    }

    #[test]
    fn total_threads_multiplies() {
        assert_eq!(small_spec().total_threads(), 1280);
    }
}
