//! Kernel execution specifications — the simulator's input language.
//!
//! A [`KernelExecSpec`] summarizes what a tiled GPU kernel does:
//! launch geometry, arithmetic, and one [`RefAccess`] per distinct array
//! reference describing footprints, access counts, coalescing and
//! block-level sharing. The PPCG stand-in (`eatss-ppcg`) lowers a tiled
//! affine kernel to this form.

/// Per-reference memory behaviour within one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct RefAccess {
    /// Array name (diagnostics only).
    pub name: String,
    /// Staged through software-managed shared memory (the `SH_set` of
    /// §IV-E) rather than relying on the L1 cache.
    pub staged_shared: bool,
    /// Distinct elements touched per block *per serial tile step* (the
    /// inner working set that must stay L1/shared resident).
    pub tile_footprint_elems: i64,
    /// Distinct elements touched per block over its whole lifetime.
    pub block_footprint_elems: i64,
    /// Distinct elements touched by the whole kernel.
    pub total_footprint_elems: i64,
    /// Dynamic element accesses issued by all threads of one block.
    pub accesses_per_block: i64,
    /// Whether consecutive threads access consecutive elements (coalesced
    /// along the thread-x dimension).
    pub coalesced: bool,
    /// Contiguous run length (elements) along the fastest-varying array
    /// dimension covered by one tile — drives DRAM row-buffer efficiency.
    pub contiguous_x_elems: i64,
    /// Whether different block-x indices touch different data.
    pub varies_block_x: bool,
    /// Whether different block-y indices touch different data.
    pub varies_block_y: bool,
    /// Whether the reference is written.
    pub is_write: bool,
}

impl RefAccess {
    /// Convenience constructor for a purely streaming reference (each
    /// block touches its own contiguous chunk exactly once) — useful for
    /// tests and simple kernels. The result is saturated: a `per_block`
    /// exceeding `total_elems` clamps the footprints to the array size
    /// (the extra accesses are repeats, not new elements).
    pub fn streaming(name: &str, total_elems: i64, per_block: i64, coalesced: bool) -> Self {
        RefAccess {
            name: name.to_owned(),
            staged_shared: false,
            tile_footprint_elems: per_block,
            block_footprint_elems: per_block,
            total_footprint_elems: total_elems,
            accesses_per_block: per_block,
            coalesced,
            contiguous_x_elems: per_block,
            varies_block_x: true,
            varies_block_y: true,
            is_write: false,
        }
        .saturated()
    }

    /// Dynamic accesses per element of block footprint (the reuse factor
    /// the block extracts from on-chip memories). Degenerate (zero or
    /// negative) footprints extract no reuse.
    pub fn reuse_factor(&self) -> f64 {
        if self.block_footprint_elems <= 0 {
            0.0
        } else {
            self.accesses_per_block as f64 / self.block_footprint_elems as f64
        }
    }

    /// Rejects references no consistent kernel can produce: negative
    /// footprints, access counts or contiguity runs.
    ///
    /// # Errors
    ///
    /// A message naming the first negative field.
    pub fn validate(&self) -> Result<(), String> {
        for (field, v) in [
            ("tile_footprint_elems", self.tile_footprint_elems),
            ("block_footprint_elems", self.block_footprint_elems),
            ("total_footprint_elems", self.total_footprint_elems),
            ("accesses_per_block", self.accesses_per_block),
            ("contiguous_x_elems", self.contiguous_x_elems),
        ] {
            if v < 0 {
                return Err(format!("reference `{}`: {field} is negative ({v})", self.name));
            }
        }
        Ok(())
    }

    /// Whether [`RefAccess::saturated`] would change nothing.
    pub fn is_saturated(&self) -> bool {
        self.block_footprint_elems <= self.total_footprint_elems
            && self.tile_footprint_elems <= self.block_footprint_elems
            && self.contiguous_x_elems <= self.total_footprint_elems.max(1)
    }

    /// Restores the footprint containment chain a real kernel obeys:
    /// a block cannot touch more distinct elements than the whole kernel,
    /// one serial step cannot touch more than the block's lifetime, and a
    /// contiguous run cannot outrun the array. Access *counts* are left
    /// alone — re-touching an element is repetition, not new footprint.
    pub fn saturated(&self) -> RefAccess {
        let mut r = self.clone();
        r.block_footprint_elems = r.block_footprint_elems.min(r.total_footprint_elems);
        r.tile_footprint_elems = r.tile_footprint_elems.min(r.block_footprint_elems);
        r.contiguous_x_elems = r.contiguous_x_elems.min(r.total_footprint_elems.max(1));
        r
    }
}

/// A [`KernelExecSpec`] the simulator refuses to price: the launch
/// geometry or a reference is structurally impossible (not merely
/// un-saturated), so any energy number would be fiction.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// The offending kernel's name.
    pub kernel: String,
    /// What is inconsistent.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inconsistent spec for `{}`: {}", self.kernel, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Everything the simulator needs to know about one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelExecSpec {
    /// Kernel name (diagnostics and noise seeding).
    pub name: String,
    /// Number of thread blocks launched.
    pub grid_blocks: i64,
    /// Extent of the fastest-varying (x) grid dimension in blocks; block
    /// ids are scheduled x-first, so this controls which tiles coexist in
    /// a wave. Use `grid_blocks` for 1-D grids.
    pub grid_x_blocks: i64,
    /// Threads per block (≤ `T_P_B`).
    pub threads_per_block: i64,
    /// Iteration points each thread covers per serial step (PPCG's
    /// point-loop multiplicity when the tile exceeds the block).
    pub points_per_thread: i64,
    /// Serial tile steps executed by each block (e.g. `K / T_k` for
    /// matmul) — each ends with a block barrier when staging is used.
    pub serial_steps_per_block: i64,
    /// Total floating-point operations of the launch.
    pub flops_total: f64,
    /// Element width in bytes (4 = FP32, 8 = FP64).
    pub elem_bytes: u8,
    /// Shared memory consumed per block, bytes.
    pub shared_bytes_per_block: u32,
    /// L1 cache available per SM under the chosen carve-out, bytes.
    pub l1_avail_bytes: u64,
    /// Number of distinct-cache-line references (register-pressure model,
    /// §IV-G).
    pub num_refs: u32,
    /// Per-reference access descriptions.
    pub refs: Vec<RefAccess>,
}

impl KernelExecSpec {
    /// Estimated registers per thread: a fixed base plus per-reference
    /// address/operand registers scaled by precision (§IV-G, §IV-I), plus
    /// accumulators for multi-point threads. Clamped to the value range
    /// real compilers produce.
    pub fn regs_per_thread(&self) -> u32 {
        let fp_factor = if self.elem_bytes >= 8 { 2 } else { 1 };
        let base = 16u32;
        let per_ref = 3 * self.num_refs * fp_factor;
        // Point loops are unrolled up to a compiler window (~16 points):
        // each unrolled point holds value temporaries plus per-reference
        // address registers.
        let unrolled = self.points_per_thread.clamp(0, 16) as u32;
        let acc = 2 * unrolled * fp_factor;
        let addr = if self.points_per_thread > 1 {
            2 * self.num_refs
        } else {
            0
        };
        (base + per_ref + acc + addr).min(512)
    }

    /// Total dynamic threads of the launch.
    pub fn total_threads(&self) -> i64 {
        self.grid_blocks.saturating_mul(self.threads_per_block)
    }

    /// Rejects launches no driver would accept: non-positive grids or
    /// blocks, negative work, non-finite flops, zero-width elements, or a
    /// reference with negative counts. Degenerate-but-representable specs
    /// (footprint ordering violations) are *not* errors — they are
    /// repaired by [`KernelExecSpec::saturated`] instead.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] naming the first violated rule.
    pub fn validate(&self) -> Result<(), SpecError> {
        let fail = |message: String| {
            Err(SpecError {
                kernel: self.name.clone(),
                message,
            })
        };
        for (field, v) in [
            ("grid_blocks", self.grid_blocks),
            ("grid_x_blocks", self.grid_x_blocks),
            ("threads_per_block", self.threads_per_block),
        ] {
            if v <= 0 {
                return fail(format!("{field} must be positive (got {v})"));
            }
        }
        for (field, v) in [
            ("points_per_thread", self.points_per_thread),
            ("serial_steps_per_block", self.serial_steps_per_block),
        ] {
            if v < 0 {
                return fail(format!("{field} is negative ({v})"));
            }
        }
        if !self.flops_total.is_finite() || self.flops_total < 0.0 {
            return fail(format!(
                "flops_total must be finite and non-negative (got {})",
                self.flops_total
            ));
        }
        if self.elem_bytes == 0 {
            return fail("elem_bytes must be positive".to_owned());
        }
        for r in &self.refs {
            if let Err(message) = r.validate() {
                return fail(message);
            }
        }
        Ok(())
    }

    /// Whether [`KernelExecSpec::saturated`] would change nothing.
    pub fn is_saturated(&self) -> bool {
        self.grid_x_blocks <= self.grid_blocks && self.refs.iter().all(RefAccess::is_saturated)
    }

    /// Clamps the spec onto the consistent envelope: the x-extent of the
    /// grid cannot exceed the grid, and every reference obeys the
    /// footprint containment chain (see [`RefAccess::saturated`]).
    pub fn saturated(&self) -> KernelExecSpec {
        let mut s = self.clone();
        s.grid_x_blocks = s.grid_x_blocks.min(s.grid_blocks);
        for r in &mut s.refs {
            if !r.is_saturated() {
                *r = r.saturated();
            }
        }
        s
    }

    /// A stable 64-bit fingerprint of the launch (noise seeding).
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::noise::FNV_OFFSET;
        for b in self.name.as_bytes() {
            h = crate::noise::fnv_step(h, *b as u64);
        }
        for v in [
            self.grid_blocks as u64,
            self.threads_per_block as u64,
            self.points_per_thread as u64,
            self.serial_steps_per_block as u64,
            self.flops_total.to_bits(),
            self.elem_bytes as u64,
            self.shared_bytes_per_block as u64,
            self.l1_avail_bytes,
        ] {
            h = crate::noise::fnv_step(h, v);
        }
        for r in &self.refs {
            for v in [
                r.tile_footprint_elems as u64,
                r.block_footprint_elems as u64,
                r.accesses_per_block as u64,
                r.coalesced as u64,
                r.staged_shared as u64,
            ] {
                h = crate::noise::fnv_step(h, v);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> KernelExecSpec {
        KernelExecSpec {
            name: "t".into(),
            grid_blocks: 10,
            grid_x_blocks: 5,
            threads_per_block: 128,
            points_per_thread: 2,
            serial_steps_per_block: 4,
            flops_total: 1e6,
            elem_bytes: 8,
            shared_bytes_per_block: 1024,
            l1_avail_bytes: 64 * 1024,
            num_refs: 3,
            refs: vec![RefAccess::streaming("a", 1000, 100, true)],
        }
    }

    #[test]
    fn regs_scale_with_precision_and_refs() {
        let mut s = small_spec();
        let fp64 = s.regs_per_thread();
        s.elem_bytes = 4;
        let fp32 = s.regs_per_thread();
        assert!(fp64 > fp32);
        s.num_refs = 6;
        assert!(s.regs_per_thread() > fp32);
    }

    #[test]
    fn regs_are_clamped() {
        let mut s = small_spec();
        s.points_per_thread = 100_000;
        s.num_refs = 40;
        assert!(s.regs_per_thread() <= 512);
        // The unroll window caps the point-dependent term.
        let mut t = small_spec();
        t.points_per_thread = 16;
        let at_window = t.regs_per_thread();
        t.points_per_thread = 1_000;
        assert_eq!(t.regs_per_thread(), at_window);
    }

    #[test]
    fn streaming_constructor_is_self_consistent() {
        let r = RefAccess::streaming("x", 1_000_000, 256, true);
        assert_eq!(r.block_footprint_elems, 256);
        assert_eq!(r.accesses_per_block, 256);
        assert!((r.reuse_factor() - 1.0).abs() < 1e-12);
        assert!(!r.is_write);
    }

    #[test]
    fn reuse_factor_handles_zero_footprint() {
        let mut r = RefAccess::streaming("x", 0, 0, true);
        r.block_footprint_elems = 0;
        assert_eq!(r.reuse_factor(), 0.0);
        // Negative footprints (representable but meaningless) extract
        // no reuse either, instead of a negative factor.
        r.block_footprint_elems = -5;
        assert_eq!(r.reuse_factor(), 0.0);
    }

    #[test]
    fn streaming_saturates_oversized_blocks() {
        // A block "touching" 256 elements of a 100-element array touches
        // 100 distinct elements 256 times.
        let r = RefAccess::streaming("x", 100, 256, true);
        assert_eq!(r.total_footprint_elems, 100);
        assert_eq!(r.block_footprint_elems, 100);
        assert_eq!(r.tile_footprint_elems, 100);
        assert_eq!(r.contiguous_x_elems, 100);
        assert_eq!(r.accesses_per_block, 256, "accesses are repeats, kept");
        assert!((r.reuse_factor() - 2.56).abs() < 1e-12);
        assert!(r.is_saturated());
    }

    #[test]
    fn ref_validate_rejects_negative_counts() {
        let good = RefAccess::streaming("x", 1000, 100, true);
        assert_eq!(good.validate(), Ok(()));
        for mutate in [
            |r: &mut RefAccess| r.tile_footprint_elems = -1,
            |r: &mut RefAccess| r.block_footprint_elems = -1,
            |r: &mut RefAccess| r.total_footprint_elems = -1,
            |r: &mut RefAccess| r.accesses_per_block = -1,
            |r: &mut RefAccess| r.contiguous_x_elems = -1,
        ] {
            let mut r = good.clone();
            mutate(&mut r);
            assert!(r.validate().is_err());
        }
    }

    #[test]
    fn saturation_restores_containment_chain() {
        let mut r = RefAccess::streaming("x", 1000, 100, true);
        r.tile_footprint_elems = 5000;
        r.block_footprint_elems = 2000;
        r.contiguous_x_elems = 9999;
        assert!(!r.is_saturated());
        let s = r.saturated();
        assert_eq!(s.block_footprint_elems, 1000);
        assert_eq!(s.tile_footprint_elems, 1000);
        assert_eq!(s.contiguous_x_elems, 1000);
        assert!(s.is_saturated());
        // Saturation is idempotent.
        assert_eq!(s.saturated(), s);
    }

    #[test]
    fn spec_validate_rejects_impossible_launches() {
        let good = small_spec();
        assert!(good.validate().is_ok());
        type Case = (&'static str, Box<dyn Fn(&mut KernelExecSpec)>);
        let cases: Vec<Case> = vec![
            ("zero grid", Box::new(|s| s.grid_blocks = 0)),
            ("negative grid x", Box::new(|s| s.grid_x_blocks = -1)),
            ("zero threads", Box::new(|s| s.threads_per_block = 0)),
            ("negative points", Box::new(|s| s.points_per_thread = -1)),
            ("negative steps", Box::new(|s| s.serial_steps_per_block = -2)),
            ("nan flops", Box::new(|s| s.flops_total = f64::NAN)),
            ("negative flops", Box::new(|s| s.flops_total = -1.0)),
            ("zero-width elems", Box::new(|s| s.elem_bytes = 0)),
            (
                "negative ref field",
                Box::new(|s| s.refs[0].accesses_per_block = -7),
            ),
        ];
        for (what, mutate) in cases {
            let mut s = good.clone();
            mutate(&mut s);
            let err = s.validate().expect_err(what);
            assert_eq!(err.kernel, "t");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn spec_saturation_clamps_grid_x_and_refs() {
        let mut s = small_spec();
        s.grid_x_blocks = 64; // > grid_blocks = 10
        s.refs[0].contiguous_x_elems = 1_000_000;
        assert!(!s.is_saturated());
        let sat = s.saturated();
        assert_eq!(sat.grid_x_blocks, 10);
        assert_eq!(sat.refs[0].contiguous_x_elems, 1000);
        assert!(sat.is_saturated());
        assert!(small_spec().is_saturated());
    }

    #[test]
    fn fingerprint_changes_with_fields() {
        let a = small_spec();
        let mut b = small_spec();
        b.grid_blocks = 11;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = small_spec();
        c.refs[0].coalesced = false;
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), small_spec().fingerprint());
    }

    #[test]
    fn total_threads_multiplies() {
        assert_eq!(small_spec().total_threads(), 1280);
    }
}
