//! Data-driven device profiles: the [`GpuArch`] parameter set as a
//! loadable, validatable, pretty-printable document.
//!
//! The paper's device dependence (GA100 vs Xavier flip winners in
//! Figs 7/8/10) makes the architecture description an *input*, not a
//! constant. A [`DeviceProfile`] wraps a [`GpuArch`] with:
//!
//! * a zero-dependency loader for JSON (via [`eatss_trace::json`]) and a
//!   TOML subset (`key = value` lines plus one `[power]` table);
//! * [`DeviceProfile::validate`], which rejects non-physical profiles —
//!   zero SMs, negative energy coefficients, bandwidth inversions, a TDP
//!   below the idle floor;
//! * pretty-printers ([`DeviceProfile::to_json_pretty`],
//!   [`DeviceProfile::to_toml`]) whose output re-parses to a
//!   bit-identical profile (Rust's `f64` Display emits the shortest
//!   round-tripping decimal);
//! * a registry of committed builtin profiles (`profiles/*.json`,
//!   embedded at compile time) behind [`DeviceProfile::builtin`].
//!
//! The legacy constructors [`GpuArch::ga100`] / [`GpuArch::xavier`] are
//! re-expressed on top of the committed profiles and pinned field-equal
//! to their historical literal values by test.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::OnceLock;

use eatss_trace::json::{self, Json};

use crate::arch::{GpuArch, PowerCoefficients};

/// Why a profile failed to load or validate.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The document is not syntactically valid JSON/TOML, or contains a
    /// field the schema does not know.
    Parse(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but has the wrong type or range.
    BadField {
        /// The offending field name.
        field: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The profile parsed but describes a non-physical device.
    Invalid(String),
    /// The profile file could not be read.
    Io(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Parse(msg) => write!(f, "profile parse error: {msg}"),
            ProfileError::MissingField(name) => write!(f, "profile is missing field `{name}`"),
            ProfileError::BadField { field, reason } => {
                write!(f, "profile field `{field}`: {reason}")
            }
            ProfileError::Invalid(msg) => write!(f, "non-physical profile: {msg}"),
            ProfileError::Io(msg) => write!(f, "profile io error: {msg}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// A loadable device description wrapping one [`GpuArch`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    arch: GpuArch,
}

/// The committed profile portfolio, embedded at compile time. Names are
/// the lowercase file stems under `crates/gpusim/profiles/`.
const BUILTIN_SOURCES: &[(&str, &str)] = &[
    ("ga100", include_str!("../profiles/ga100.json")),
    ("xavier", include_str!("../profiles/xavier.json")),
    ("h100", include_str!("../profiles/h100.json")),
    ("orin", include_str!("../profiles/orin.json")),
    ("nano", include_str!("../profiles/nano.json")),
];

fn builtin_table() -> &'static Vec<(&'static str, DeviceProfile)> {
    static TABLE: OnceLock<Vec<(&'static str, DeviceProfile)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        BUILTIN_SOURCES
            .iter()
            .map(|(name, source)| {
                let profile = DeviceProfile::from_json(source)
                    .unwrap_or_else(|e| panic!("builtin profile `{name}` does not parse: {e}"));
                profile
                    .validate()
                    .unwrap_or_else(|e| panic!("builtin profile `{name}` is invalid: {e}"));
                (*name, profile)
            })
            .collect()
    })
}

impl DeviceProfile {
    /// Wraps an already-constructed architecture.
    pub fn new(arch: GpuArch) -> Self {
        DeviceProfile { arch }
    }

    /// The wrapped architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Unwraps into the architecture.
    pub fn into_arch(self) -> GpuArch {
        self.arch
    }

    /// The names of the committed builtin profiles, in portfolio order.
    pub fn builtin_names() -> Vec<&'static str> {
        builtin_table().iter().map(|(name, _)| *name).collect()
    }

    /// Looks up a committed builtin profile by (case-insensitive) name.
    pub fn builtin(name: &str) -> Option<DeviceProfile> {
        let lower = name.to_ascii_lowercase();
        builtin_table()
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, p)| p.clone())
    }

    /// Parses a profile from either supported format, sniffed from the
    /// first non-whitespace byte (`{` → JSON, anything else → TOML).
    /// Parsing does not validate — follow with [`DeviceProfile::validate`]
    /// before trusting the numbers (or use [`DeviceProfile::load`]).
    ///
    /// # Errors
    ///
    /// [`ProfileError::Parse`] / [`ProfileError::MissingField`] /
    /// [`ProfileError::BadField`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, ProfileError> {
        match text.trim_start().chars().next() {
            Some('{') => Self::from_json(text),
            _ => Self::from_toml(text),
        }
    }

    /// Reads and parses a profile file, then validates it.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] when the file cannot be read; otherwise the
    /// same conditions as [`DeviceProfile::parse`] and
    /// [`DeviceProfile::validate`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ProfileError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ProfileError::Io(format!("{}: {e}", path.display())))?;
        let profile = Self::parse(&text)?;
        profile.validate()?;
        Ok(profile)
    }

    /// Parses the JSON profile format (see `crates/gpusim/profiles/` for
    /// the canonical shape). Does not validate.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Parse`] on syntax errors or unknown fields,
    /// [`ProfileError::MissingField`] / [`ProfileError::BadField`] on
    /// schema violations.
    pub fn from_json(text: &str) -> Result<Self, ProfileError> {
        let value = Json::parse(text).map_err(ProfileError::Parse)?;
        let object = value
            .as_object()
            .ok_or_else(|| ProfileError::Parse("top level is not an object".to_owned()))?;
        let mut raw = RawProfile::default();
        for (key, field) in object {
            match key.as_str() {
                "name" => {
                    raw.name = Some(
                        field
                            .as_str()
                            .ok_or_else(|| bad(key, "expected a string"))?
                            .to_owned(),
                    );
                }
                "power" => {
                    let table = field
                        .as_object()
                        .ok_or_else(|| bad(key, "expected an object"))?;
                    for (coeff, v) in table {
                        let n = v
                            .as_f64()
                            .ok_or_else(|| bad(&format!("power.{coeff}"), "expected a number"))?;
                        raw.power.insert(coeff.clone(), n);
                    }
                }
                _ => {
                    let n = field.as_f64().ok_or_else(|| bad(key, "expected a number"))?;
                    raw.scalars.insert(key.clone(), n);
                }
            }
        }
        raw.into_profile()
    }

    /// Parses the TOML-subset profile format: `#` comments, top-level
    /// `key = value` lines and a single `[power]` table; strings use
    /// JSON string syntax. Does not validate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeviceProfile::from_json`].
    pub fn from_toml(text: &str) -> Result<Self, ProfileError> {
        let mut raw = RawProfile::default();
        let mut in_power = false;
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(table) = line.strip_prefix('[') {
                let table = table
                    .strip_suffix(']')
                    .ok_or_else(|| ProfileError::Parse(format!("line {lineno}: unclosed `[`")))?
                    .trim();
                if table != "power" {
                    return Err(ProfileError::Parse(format!(
                        "line {lineno}: unknown table `[{table}]` (only `[power]` is known)"
                    )));
                }
                in_power = true;
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ProfileError::Parse(format!("line {lineno}: expected `key = value`"))
            })?;
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() {
                return Err(ProfileError::Parse(format!("line {lineno}: empty key")));
            }
            if value.starts_with('"') {
                let parsed = Json::parse(value)
                    .map_err(|e| ProfileError::Parse(format!("line {lineno}: {e}")))?;
                let s = parsed
                    .as_str()
                    .ok_or_else(|| ProfileError::Parse(format!("line {lineno}: bad string")))?;
                if in_power || key != "name" {
                    return Err(bad(key, "expected a number"));
                }
                raw.name = Some(s.to_owned());
            } else {
                let n: f64 = value.parse().map_err(|_| {
                    ProfileError::Parse(format!("line {lineno}: `{value}` is not a number"))
                })?;
                if in_power {
                    raw.power.insert(key.to_owned(), n);
                } else {
                    raw.scalars.insert(key.to_owned(), n);
                }
            }
        }
        raw.into_profile()
    }

    /// Pretty-prints the canonical JSON form: fixed field order, 2-space
    /// indent, trailing newline. Re-parsing the output yields a
    /// bit-identical profile; the committed `profiles/*.json` are byte-
    /// identical to this rendering (pinned by test).
    pub fn to_json_pretty(&self) -> String {
        let a = &self.arch;
        let p = &a.power;
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"name\": \"{}\",\n", json::escape(&a.name)));
        for (key, value) in self.scalar_fields() {
            s.push_str(&format!("  \"{key}\": {value},\n"));
        }
        s.push_str("  \"power\": {\n");
        let coeffs = power_fields(p);
        for (i, (key, value)) in coeffs.iter().enumerate() {
            let comma = if i + 1 == coeffs.len() { "" } else { "," };
            s.push_str(&format!("    \"{key}\": {value}{comma}\n"));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Pretty-prints the canonical TOML form (same field order as the
    /// JSON printer, `[power]` table last). Re-parsing the output yields
    /// a bit-identical profile.
    pub fn to_toml(&self) -> String {
        let a = &self.arch;
        let mut s = String::with_capacity(1024);
        s.push_str(&format!("name = \"{}\"\n", json::escape(&a.name)));
        for (key, value) in self.scalar_fields() {
            s.push_str(&format!("{key} = {value}\n"));
        }
        s.push_str("\n[power]\n");
        for (key, value) in power_fields(&a.power) {
            s.push_str(&format!("{key} = {value}\n"));
        }
        s
    }

    /// The canonical printed form of every non-name, non-power field.
    fn scalar_fields(&self) -> Vec<(&'static str, String)> {
        let a = &self.arch;
        vec![
            ("sm_count", a.sm_count.to_string()),
            ("max_threads_per_block", a.max_threads_per_block.to_string()),
            ("threads_per_warp", a.threads_per_warp.to_string()),
            ("max_threads_per_sm", a.max_threads_per_sm.to_string()),
            ("max_blocks_per_sm", a.max_blocks_per_sm.to_string()),
            ("regs_per_sm", a.regs_per_sm.to_string()),
            ("regs_per_thread", a.regs_per_thread.to_string()),
            ("l1_shared_bytes", a.l1_shared_bytes.to_string()),
            ("max_shared_per_block", a.max_shared_per_block.to_string()),
            ("l2_bytes", a.l2_bytes.to_string()),
            ("dram_bytes", a.dram_bytes.to_string()),
            ("peak_fp32_gflops", json::number(a.peak_fp32_gflops)),
            ("peak_fp64_gflops", json::number(a.peak_fp64_gflops)),
            (
                "peak_fp64_tensor_gflops",
                json::number(a.peak_fp64_tensor_gflops),
            ),
            ("dram_bw_gbs", json::number(a.dram_bw_gbs)),
            ("l2_bw_gbs", json::number(a.l2_bw_gbs)),
            ("shared_bw_gbs", json::number(a.shared_bw_gbs)),
            ("tdp_w", json::number(a.tdp_w)),
            ("launch_overhead_s", json::number(a.launch_overhead_s)),
            ("barrier_overhead_s", json::number(a.barrier_overhead_s)),
            ("dram_row_chunk_bytes", json::number(a.dram_row_chunk_bytes)),
            ("power_ramp_tau_s", json::number(a.power_ramp_tau_s)),
        ]
    }

    /// Rejects non-physical profiles. Rules:
    ///
    /// * every count/capacity is positive, and nested limits are
    ///   consistent (warp ≤ block ≤ SM threads; block shared ≤ L1/shared
    ///   pool; L2 ≤ DRAM capacity);
    /// * bandwidths are finite, positive and not inverted
    ///   (DRAM ≤ L2 ≤ shared);
    /// * peaks are finite and positive, with FP64 ≤ FP32 and the tensor
    ///   peak at least the plain FP64 peak;
    /// * overheads are finite and non-negative; ramp and row-chunk are
    ///   positive;
    /// * every power/energy coefficient is finite and non-negative, and
    ///   the TDP exceeds the idle floor (constant + static base).
    ///
    /// # Errors
    ///
    /// [`ProfileError::Invalid`] naming the first violated rule.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let a = &self.arch;
        let fail = |msg: String| Err(ProfileError::Invalid(msg));
        if a.name.is_empty() {
            return fail("name is empty".to_owned());
        }
        for (field, v) in [
            ("sm_count", a.sm_count),
            ("max_threads_per_block", a.max_threads_per_block),
            ("threads_per_warp", a.threads_per_warp),
            ("max_threads_per_sm", a.max_threads_per_sm),
            ("max_blocks_per_sm", a.max_blocks_per_sm),
            ("regs_per_sm", a.regs_per_sm),
            ("regs_per_thread", a.regs_per_thread),
        ] {
            if v == 0 {
                return fail(format!("{field} must be positive"));
            }
        }
        if a.threads_per_warp > a.max_threads_per_block {
            return fail("threads_per_warp exceeds max_threads_per_block".to_owned());
        }
        if a.max_threads_per_block > a.max_threads_per_sm {
            return fail("max_threads_per_block exceeds max_threads_per_sm".to_owned());
        }
        for (field, v) in [
            ("l1_shared_bytes", a.l1_shared_bytes),
            ("max_shared_per_block", a.max_shared_per_block),
            ("l2_bytes", a.l2_bytes),
            ("dram_bytes", a.dram_bytes),
        ] {
            if v == 0 {
                return fail(format!("{field} must be positive"));
            }
        }
        if a.max_shared_per_block > a.l1_shared_bytes {
            return fail("max_shared_per_block exceeds l1_shared_bytes".to_owned());
        }
        if a.l2_bytes > a.dram_bytes {
            return fail("l2_bytes exceeds dram_bytes".to_owned());
        }
        for (field, v) in [
            ("peak_fp32_gflops", a.peak_fp32_gflops),
            ("peak_fp64_gflops", a.peak_fp64_gflops),
            ("peak_fp64_tensor_gflops", a.peak_fp64_tensor_gflops),
            ("dram_bw_gbs", a.dram_bw_gbs),
            ("l2_bw_gbs", a.l2_bw_gbs),
            ("shared_bw_gbs", a.shared_bw_gbs),
            ("tdp_w", a.tdp_w),
            ("dram_row_chunk_bytes", a.dram_row_chunk_bytes),
            ("power_ramp_tau_s", a.power_ramp_tau_s),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return fail(format!("{field} must be finite and positive"));
            }
        }
        if a.peak_fp64_gflops > a.peak_fp32_gflops {
            return fail("peak_fp64_gflops exceeds peak_fp32_gflops".to_owned());
        }
        if a.peak_fp64_tensor_gflops < a.peak_fp64_gflops {
            return fail("peak_fp64_tensor_gflops below peak_fp64_gflops".to_owned());
        }
        if a.dram_bw_gbs > a.l2_bw_gbs {
            return fail("bandwidth inversion: dram_bw_gbs exceeds l2_bw_gbs".to_owned());
        }
        if a.l2_bw_gbs > a.shared_bw_gbs {
            return fail("bandwidth inversion: l2_bw_gbs exceeds shared_bw_gbs".to_owned());
        }
        for (field, v) in [
            ("launch_overhead_s", a.launch_overhead_s),
            ("barrier_overhead_s", a.barrier_overhead_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return fail(format!("{field} must be finite and non-negative"));
            }
        }
        for (field, v) in power_coefficients(&a.power) {
            if !v.is_finite() || v < 0.0 {
                return fail(format!("power.{field} must be finite and non-negative"));
            }
        }
        if a.tdp_w <= a.idle_power_w() {
            return fail(format!(
                "tdp_w ({}) does not exceed the idle floor ({})",
                a.tdp_w,
                a.idle_power_w()
            ));
        }
        Ok(())
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.arch.fmt(f)
    }
}

fn power_coefficients(p: &PowerCoefficients) -> [(&'static str, f64); 8] {
    [
        ("p_constant_w", p.p_constant_w),
        ("p_static_base_w", p.p_static_base_w),
        ("p_static_active_w", p.p_static_active_w),
        ("p_sm_dynamic_w", p.p_sm_dynamic_w),
        ("e_flop_j_per_gflop", p.e_flop_j_per_gflop),
        ("e_l2_j_per_gb", p.e_l2_j_per_gb),
        ("e_dram_j_per_gb", p.e_dram_j_per_gb),
        ("e_shared_j_per_gb", p.e_shared_j_per_gb),
    ]
}

fn power_fields(p: &PowerCoefficients) -> Vec<(&'static str, String)> {
    power_coefficients(p)
        .iter()
        .map(|(name, v)| (*name, json::number(*v)))
        .collect()
}

fn bad(field: &str, reason: &str) -> ProfileError {
    ProfileError::BadField {
        field: field.to_owned(),
        reason: reason.to_owned(),
    }
}

/// Cuts a TOML line at the first `#` that is outside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// The field soup both parsers produce before schema checking.
#[derive(Default)]
struct RawProfile {
    name: Option<String>,
    scalars: BTreeMap<String, f64>,
    power: BTreeMap<String, f64>,
}

impl RawProfile {
    fn into_profile(mut self) -> Result<DeviceProfile, ProfileError> {
        let name = self.name.take().ok_or(ProfileError::MissingField("name"))?;
        let arch = GpuArch {
            name,
            sm_count: self.take_u32("sm_count")?,
            max_threads_per_block: self.take_u32("max_threads_per_block")?,
            threads_per_warp: self.take_u32("threads_per_warp")?,
            max_threads_per_sm: self.take_u32("max_threads_per_sm")?,
            max_blocks_per_sm: self.take_u32("max_blocks_per_sm")?,
            regs_per_sm: self.take_u32("regs_per_sm")?,
            regs_per_thread: self.take_u32("regs_per_thread")?,
            l1_shared_bytes: self.take_u64("l1_shared_bytes")?,
            max_shared_per_block: self.take_u64("max_shared_per_block")?,
            l2_bytes: self.take_u64("l2_bytes")?,
            dram_bytes: self.take_u64("dram_bytes")?,
            peak_fp32_gflops: self.take_f64("peak_fp32_gflops")?,
            peak_fp64_gflops: self.take_f64("peak_fp64_gflops")?,
            peak_fp64_tensor_gflops: self.take_f64("peak_fp64_tensor_gflops")?,
            dram_bw_gbs: self.take_f64("dram_bw_gbs")?,
            l2_bw_gbs: self.take_f64("l2_bw_gbs")?,
            shared_bw_gbs: self.take_f64("shared_bw_gbs")?,
            tdp_w: self.take_f64("tdp_w")?,
            launch_overhead_s: self.take_f64("launch_overhead_s")?,
            barrier_overhead_s: self.take_f64("barrier_overhead_s")?,
            dram_row_chunk_bytes: self.take_f64("dram_row_chunk_bytes")?,
            power_ramp_tau_s: self.take_f64("power_ramp_tau_s")?,
            power: PowerCoefficients {
                p_constant_w: self.take_power("p_constant_w")?,
                p_static_base_w: self.take_power("p_static_base_w")?,
                p_static_active_w: self.take_power("p_static_active_w")?,
                p_sm_dynamic_w: self.take_power("p_sm_dynamic_w")?,
                e_flop_j_per_gflop: self.take_power("e_flop_j_per_gflop")?,
                e_l2_j_per_gb: self.take_power("e_l2_j_per_gb")?,
                e_dram_j_per_gb: self.take_power("e_dram_j_per_gb")?,
                e_shared_j_per_gb: self.take_power("e_shared_j_per_gb")?,
            },
        };
        if let Some(extra) = self.scalars.keys().next() {
            return Err(ProfileError::Parse(format!("unknown field `{extra}`")));
        }
        if let Some(extra) = self.power.keys().next() {
            return Err(ProfileError::Parse(format!("unknown field `power.{extra}`")));
        }
        Ok(DeviceProfile { arch })
    }

    fn take_f64(&mut self, field: &'static str) -> Result<f64, ProfileError> {
        self.scalars
            .remove(field)
            .ok_or(ProfileError::MissingField(field))
    }

    fn take_power(&mut self, field: &'static str) -> Result<f64, ProfileError> {
        self.power
            .remove(field)
            .ok_or(ProfileError::MissingField(field))
    }

    fn take_u32(&mut self, field: &'static str) -> Result<u32, ProfileError> {
        let v = self.take_f64(field)?;
        if v.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&v) {
            return Err(bad(field, "expected a non-negative 32-bit integer"));
        }
        Ok(v as u32)
    }

    fn take_u64(&mut self, field: &'static str) -> Result<u64, ProfileError> {
        let v = self.take_f64(field)?;
        // 2^53: beyond this, f64 cannot represent every integer and the
        // JSON round trip would silently quantize.
        if v.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&v) {
            return Err(bad(field, "expected a non-negative integer below 2^53"));
        }
        Ok(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bit_identical(a: &GpuArch, b: &GpuArch) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            (
                a.sm_count,
                a.max_threads_per_block,
                a.threads_per_warp,
                a.max_threads_per_sm,
                a.max_blocks_per_sm,
                a.regs_per_sm,
                a.regs_per_thread,
            ),
            (
                b.sm_count,
                b.max_threads_per_block,
                b.threads_per_warp,
                b.max_threads_per_sm,
                b.max_blocks_per_sm,
                b.regs_per_sm,
                b.regs_per_thread,
            )
        );
        assert_eq!(
            (
                a.l1_shared_bytes,
                a.max_shared_per_block,
                a.l2_bytes,
                a.dram_bytes
            ),
            (
                b.l1_shared_bytes,
                b.max_shared_per_block,
                b.l2_bytes,
                b.dram_bytes
            )
        );
        let floats = |x: &GpuArch| {
            let p = &x.power;
            [
                x.peak_fp32_gflops,
                x.peak_fp64_gflops,
                x.peak_fp64_tensor_gflops,
                x.dram_bw_gbs,
                x.l2_bw_gbs,
                x.shared_bw_gbs,
                x.tdp_w,
                x.launch_overhead_s,
                x.barrier_overhead_s,
                x.dram_row_chunk_bytes,
                x.power_ramp_tau_s,
                p.p_constant_w,
                p.p_static_base_w,
                p.p_static_active_w,
                p.p_sm_dynamic_w,
                p.e_flop_j_per_gflop,
                p.e_l2_j_per_gb,
                p.e_dram_j_per_gb,
                p.e_shared_j_per_gb,
            ]
            .map(f64::to_bits)
        };
        assert_eq!(floats(a), floats(b));
    }

    #[test]
    fn every_builtin_validates() {
        let names = DeviceProfile::builtin_names();
        assert_eq!(names, vec!["ga100", "xavier", "h100", "orin", "nano"]);
        for name in names {
            let profile = DeviceProfile::builtin(name).unwrap();
            profile.validate().unwrap();
            assert!(!profile.arch().name.is_empty());
        }
        assert!(DeviceProfile::builtin("GA100").is_some(), "case-insensitive");
        assert!(DeviceProfile::builtin("tpu").is_none());
    }

    #[test]
    fn committed_files_are_byte_identical_to_pretty_printer() {
        for (name, source) in BUILTIN_SOURCES {
            let profile = DeviceProfile::from_json(source).unwrap();
            assert_eq!(
                profile.to_json_pretty(),
                *source,
                "profiles/{name}.json drifted from the canonical pretty-printed form"
            );
        }
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        for name in DeviceProfile::builtin_names() {
            let profile = DeviceProfile::builtin(name).unwrap();
            let reparsed = DeviceProfile::from_json(&profile.to_json_pretty()).unwrap();
            assert_bit_identical(profile.arch(), reparsed.arch());
        }
    }

    #[test]
    fn toml_round_trip_is_bit_identical() {
        for name in DeviceProfile::builtin_names() {
            let profile = DeviceProfile::builtin(name).unwrap();
            let toml = profile.to_toml();
            let reparsed = DeviceProfile::from_toml(&toml).unwrap();
            assert_bit_identical(profile.arch(), reparsed.arch());
            // `parse` sniffs the format.
            let sniffed = DeviceProfile::parse(&toml).unwrap();
            assert_bit_identical(profile.arch(), sniffed.arch());
        }
    }

    #[test]
    fn toml_tolerates_comments_and_escaped_names() {
        let toml = "# a hash-mark name\nname = \"dev \\\"#1\\\"\" # trailing\n".to_owned()
            + &DeviceProfile::builtin("nano")
                .unwrap()
                .to_toml()
                .lines()
                .skip(1)
                .collect::<Vec<_>>()
                .join("\n");
        let profile = DeviceProfile::from_toml(&toml).unwrap();
        assert_eq!(profile.arch().name, "dev \"#1\"");
    }

    #[test]
    fn ga100_profile_matches_legacy_constructor() {
        let legacy = crate::arch::legacy::ga100();
        let loaded = DeviceProfile::builtin("ga100").unwrap();
        assert_bit_identical(&legacy, loaded.arch());
        assert_bit_identical(&legacy, &GpuArch::ga100());
    }

    #[test]
    fn xavier_profile_matches_legacy_constructor() {
        let legacy = crate::arch::legacy::xavier();
        let loaded = DeviceProfile::builtin("xavier").unwrap();
        assert_bit_identical(&legacy, loaded.arch());
        assert_bit_identical(&legacy, &GpuArch::xavier());
    }

    #[test]
    fn validate_rejects_non_physical_profiles() {
        let base = DeviceProfile::builtin("ga100").unwrap();
        type Mutation = (&'static str, Box<dyn Fn(&mut GpuArch)>);
        let mutations: Vec<Mutation> = vec![
            ("zero SMs", Box::new(|a| a.sm_count = 0)),
            ("empty name", Box::new(|a| a.name.clear())),
            (
                "bandwidth inversion dram>l2",
                Box::new(|a| a.dram_bw_gbs = a.l2_bw_gbs * 2.0),
            ),
            (
                "bandwidth inversion l2>shared",
                Box::new(|a| a.l2_bw_gbs = a.shared_bw_gbs * 2.0),
            ),
            (
                "negative energy",
                Box::new(|a| a.power.e_dram_j_per_gb = -1.0e-3),
            ),
            (
                "nan coefficient",
                Box::new(|a| a.power.p_sm_dynamic_w = f64::NAN),
            ),
            ("tdp below idle", Box::new(|a| a.tdp_w = 10.0)),
            (
                "fp64 above fp32",
                Box::new(|a| a.peak_fp64_gflops = a.peak_fp32_gflops * 2.0),
            ),
            (
                "block shared above pool",
                Box::new(|a| a.max_shared_per_block = a.l1_shared_bytes + 1),
            ),
            ("l2 above dram", Box::new(|a| a.l2_bytes = a.dram_bytes + 1)),
            (
                "warp above block",
                Box::new(|a| a.threads_per_warp = a.max_threads_per_block + 1),
            ),
            ("zero ramp", Box::new(|a| a.power_ramp_tau_s = 0.0)),
            (
                "negative overhead",
                Box::new(|a| a.launch_overhead_s = -1.0e-6),
            ),
        ];
        for (what, mutate) in mutations {
            let mut arch = base.arch().clone();
            mutate(&mut arch);
            let profile = DeviceProfile::new(arch);
            assert!(
                matches!(profile.validate(), Err(ProfileError::Invalid(_))),
                "mutation `{what}` should invalidate the profile"
            );
        }
    }

    #[test]
    fn parser_rejects_schema_violations() {
        let good = DeviceProfile::builtin("xavier").unwrap().to_json_pretty();
        // Unknown field.
        let with_extra = good.replacen("\"sm_count\"", "\"smcount\"", 1);
        assert!(DeviceProfile::from_json(&with_extra).is_err());
        // Missing field (drop the name line entirely).
        let without_name: String = good.lines().filter(|l| !l.contains("\"name\"")).fold(
            String::new(),
            |mut acc, line| {
                acc.push_str(line);
                acc.push('\n');
                acc
            },
        );
        assert_eq!(
            DeviceProfile::from_json(&without_name),
            Err(ProfileError::MissingField("name"))
        );
        // Fractional integer field.
        let fractional = good.replacen("\"sm_count\": 8", "\"sm_count\": 8.5", 1);
        assert!(matches!(
            DeviceProfile::from_json(&fractional),
            Err(ProfileError::BadField { .. })
        ));
        // Type confusion.
        let stringy = good.replacen("\"tdp_w\": 30", "\"tdp_w\": \"30\"", 1);
        assert!(matches!(
            DeviceProfile::from_json(&stringy),
            Err(ProfileError::BadField { .. })
        ));
        // Not even JSON.
        assert!(matches!(
            DeviceProfile::from_json("{"),
            Err(ProfileError::Parse(_))
        ));
        // TOML: unknown table.
        assert!(matches!(
            DeviceProfile::from_toml("[thermal]\nx = 1\n"),
            Err(ProfileError::Parse(_))
        ));
    }

    #[test]
    fn load_reads_and_validates_files() {
        let dir = std::env::temp_dir().join("eatss_profile_load_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.json");
        std::fs::write(&path, DeviceProfile::builtin("orin").unwrap().to_json_pretty()).unwrap();
        let loaded = DeviceProfile::load(&path).unwrap();
        assert_eq!(loaded.arch().name, "Orin");
        // A parseable but non-physical profile is rejected by load().
        let broken = path.with_file_name("broken.json");
        let text = DeviceProfile::builtin("orin")
            .unwrap()
            .to_json_pretty()
            .replacen("\"sm_count\": 16", "\"sm_count\": 0", 1);
        std::fs::write(&broken, text).unwrap();
        assert!(matches!(
            DeviceProfile::load(&broken),
            Err(ProfileError::Invalid(_))
        ));
        assert!(matches!(
            DeviceProfile::load(dir.join("absent.json")),
            Err(ProfileError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
