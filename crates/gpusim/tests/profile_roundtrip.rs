//! Property test: any `DeviceProfile` — physical or not — survives
//! pretty-print → re-parse bit-identically, in both supported formats.
//! (Validation is a separate concern; the printer/parser pair must be a
//! lossless codec on its own.)

use eatss_gpusim::{DeviceProfile, GpuArch, PowerCoefficients};
use proptest::prelude::*;

/// Names chosen to stress escaping: quotes, hashes (TOML comment
/// character), backslashes, tabs and non-ASCII.
const NAMES: &[&str] = &[
    "GA100",
    "dev \"quoted\"",
    "hash#device",
    "back\\slash",
    "tab\there",
    "π-device",
    "a",
];

/// Maps raw bits to a finite positive double (full exponent range).
fn finite_pos(bits: u64) -> f64 {
    let v = f64::from_bits(bits & 0x7FFF_FFFF_FFFF_FFFF);
    if v.is_finite() && v > 0.0 {
        v
    } else {
        (bits % 100_000) as f64 + 0.5
    }
}

fn arch_from_words(name: &str, w: &[u64]) -> GpuArch {
    GpuArch {
        name: name.to_owned(),
        sm_count: w[0] as u32,
        max_threads_per_block: w[1] as u32,
        threads_per_warp: w[2] as u32,
        max_threads_per_sm: w[3] as u32,
        max_blocks_per_sm: w[4] as u32,
        regs_per_sm: w[5] as u32,
        regs_per_thread: w[6] as u32,
        // Cap at 2^53 - the largest range the JSON number round trip
        // represents exactly (and the loader's documented limit).
        l1_shared_bytes: w[7] & ((1 << 53) - 1),
        max_shared_per_block: w[8] & ((1 << 53) - 1),
        l2_bytes: w[9] & ((1 << 53) - 1),
        dram_bytes: w[10] & ((1 << 53) - 1),
        peak_fp32_gflops: finite_pos(w[11]),
        peak_fp64_gflops: finite_pos(w[12]),
        peak_fp64_tensor_gflops: finite_pos(w[13]),
        dram_bw_gbs: finite_pos(w[14]),
        l2_bw_gbs: finite_pos(w[15]),
        shared_bw_gbs: finite_pos(w[16]),
        tdp_w: finite_pos(w[17]),
        launch_overhead_s: finite_pos(w[18]),
        barrier_overhead_s: finite_pos(w[19]),
        dram_row_chunk_bytes: finite_pos(w[20]),
        power_ramp_tau_s: finite_pos(w[21]),
        power: PowerCoefficients {
            p_constant_w: finite_pos(w[22]),
            p_static_base_w: finite_pos(w[23]),
            p_static_active_w: finite_pos(w[24]),
            p_sm_dynamic_w: finite_pos(w[25]),
            e_flop_j_per_gflop: finite_pos(w[26]),
            e_l2_j_per_gb: finite_pos(w[27]),
            e_dram_j_per_gb: finite_pos(w[28]),
            e_shared_j_per_gb: finite_pos(w[29]),
        },
    }
}

fn float_bits(a: &GpuArch) -> [u64; 19] {
    let p = &a.power;
    [
        a.peak_fp32_gflops,
        a.peak_fp64_gflops,
        a.peak_fp64_tensor_gflops,
        a.dram_bw_gbs,
        a.l2_bw_gbs,
        a.shared_bw_gbs,
        a.tdp_w,
        a.launch_overhead_s,
        a.barrier_overhead_s,
        a.dram_row_chunk_bytes,
        a.power_ramp_tau_s,
        p.p_constant_w,
        p.p_static_base_w,
        p.p_static_active_w,
        p.p_sm_dynamic_w,
        p.e_flop_j_per_gflop,
        p.e_l2_j_per_gb,
        p.e_dram_j_per_gb,
        p.e_shared_j_per_gb,
    ]
    .map(f64::to_bits)
}

fn int_fields(a: &GpuArch) -> [u64; 11] {
    [
        a.sm_count as u64,
        a.max_threads_per_block as u64,
        a.threads_per_warp as u64,
        a.max_threads_per_sm as u64,
        a.max_blocks_per_sm as u64,
        a.regs_per_sm as u64,
        a.regs_per_thread as u64,
        a.l1_shared_bytes,
        a.max_shared_per_block,
        a.l2_bytes,
        a.dram_bytes,
    ]
}

fn assert_bit_identical(a: &GpuArch, b: &GpuArch) {
    assert_eq!(a.name, b.name);
    assert_eq!(int_fields(a), int_fields(b));
    assert_eq!(float_bits(a), float_bits(b));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    #[test]
    fn pretty_print_reparse_is_a_fixpoint(
        words in prop::collection::vec(0u64..=u64::MAX, 30usize),
        name_idx in 0usize..NAMES.len(),
    ) {
        let profile = DeviceProfile::new(arch_from_words(NAMES[name_idx], &words));

        let json = profile.to_json_pretty();
        let from_json = DeviceProfile::from_json(&json).expect("printer output parses");
        assert_bit_identical(profile.arch(), from_json.arch());
        // Fixpoint: printing the re-parse reproduces the bytes.
        assert_eq!(from_json.to_json_pretty(), json);

        let toml = profile.to_toml();
        let from_toml = DeviceProfile::from_toml(&toml).expect("toml printer output parses");
        assert_bit_identical(profile.arch(), from_toml.arch());
        assert_eq!(from_toml.to_toml(), toml);

        // Format sniffing routes both renderings correctly.
        assert_bit_identical(
            profile.arch(),
            DeviceProfile::parse(&json).unwrap().arch(),
        );
        assert_bit_identical(
            profile.arch(),
            DeviceProfile::parse(&toml).unwrap().arch(),
        );
    }
}
