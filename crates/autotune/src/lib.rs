//! A *ytopt*-style Bayesian autotuner baseline (§V-H, Fig. 14).
//!
//! The paper compares EATSS against ytopt, a Bayesian-optimization
//! autotuner driving Clang/OpenMP offload. This crate reproduces that
//! baseline: a surrogate-model search over the tile space
//! (random bootstrap → RBF-interpolated expected value + exploration
//! bonus), plus a *tuning-cost model* (each evaluation pays a compile +
//! run round-trip, which is where ytopt's "17 minutes vs seconds" gap of
//! §V-H comes from) and the OpenMP-offload throughput penalty relative to
//! PPCG's native CUDA.
//!
//! # Examples
//!
//! ```
//! use eatss_autotune::{Autotuner, TuneOptions};
//! use eatss_ppcg::TileSpace;
//!
//! let space = TileSpace::new(2, vec![4, 8, 16, 32, 64]);
//! // Toy objective: prefer (16, 32).
//! let mut tuner = Autotuner::new(TuneOptions { budget: 20, seed: 7, ..TuneOptions::default() });
//! let result = tuner.tune(&space, |cfg| {
//!     let t = cfg.sizes();
//!     Some(-(((t[0] - 16).abs() + (t[1] - 32).abs()) as f64))
//! });
//! assert_eq!(result.best_tiles.expect("found something").sizes(), &[16, 32]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eatss_affine::tiling::TileConfig;
use eatss_ppcg::TileSpace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Search strategy of the tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Pure random sampling (the OpenTuner-style baseline).
    Random,
    /// Greedy neighbourhood search: move to the best 1-dimension
    /// neighbour (next/previous candidate value) until a local optimum.
    HillClimb,
    /// Random bootstrap followed by an RBF surrogate with an exploration
    /// bonus — the ytopt-style Bayesian baseline (default).
    #[default]
    Surrogate,
}

/// Tuner settings.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOptions {
    /// Search strategy.
    pub strategy: Strategy,
    /// Evaluation budget (number of objective calls).
    pub budget: usize,
    /// RNG seed (the tuner is fully deterministic given the seed).
    pub seed: u64,
    /// Random bootstrap samples before the surrogate takes over.
    pub bootstrap: usize,
    /// Modelled wall-clock cost of one evaluation (compile + run),
    /// seconds — ytopt pays a Clang + offload round trip per sample.
    pub seconds_per_eval: f64,
    /// Exploration weight of the acquisition function.
    pub exploration: f64,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            strategy: Strategy::Surrogate,
            budget: 50,
            seed: 42,
            bootstrap: 10,
            seconds_per_eval: 20.0,
            exploration: 0.3,
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best configuration found (none if every evaluation failed).
    pub best_tiles: Option<TileConfig>,
    /// Objective value of the best configuration.
    pub best_value: f64,
    /// Every `(configuration, value)` evaluated, in order; failed
    /// evaluations record `None`.
    pub history: Vec<(TileConfig, Option<f64>)>,
    /// Modelled tuning wall-clock, seconds (§V-H compares this against
    /// EATSS's solver seconds).
    pub tuning_seconds: f64,
}

impl TuneResult {
    /// How many evaluations it took to first reach `best_value` (1-based),
    /// or `None` when nothing evaluated successfully — the cost metric
    /// the cross-device transfer experiment reports.
    pub fn evals_to_best(&self) -> Option<usize> {
        self.best_tiles.as_ref()?;
        self.history
            .iter()
            .position(|(_, v)| *v == Some(self.best_value))
            .map(|p| p + 1)
    }
}

/// A surrogate fitted on one device's tuning history, portable to
/// another device: tile-size locality transfers even when the absolute
/// objective scale does not, so the *ranking* it predicts is used to
/// seed the search order on the second device
/// ([`Autotuner::tune_with_prior`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SurrogatePrior {
    samples: Vec<(Vec<f64>, f64)>, // (log-coords, value)
}

impl SurrogatePrior {
    /// Fits the prior from a completed run's successful evaluations.
    pub fn from_result(result: &TuneResult) -> Self {
        SurrogatePrior {
            samples: result
                .history
                .iter()
                .filter_map(|(cfg, v)| v.map(|v| (ln_coords(cfg), v)))
                .collect(),
        }
    }

    /// Whether the prior carries no evidence.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of fitted samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Predicted objective value at `cfg`: inverse-distance RBF
    /// interpolation in log-tile space (the same kernel the acquisition
    /// function uses). `None` when the prior is empty.
    pub fn predict(&self, cfg: &TileConfig) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let c = ln_coords(cfg);
        let (mut wsum, mut vsum) = (0.0, 0.0);
        for (pc, pv) in &self.samples {
            let d2: f64 = pc
                .iter()
                .zip(c.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let w = 1.0 / (d2 + 1e-6);
            wsum += w;
            vsum += w * pv;
        }
        Some(vsum / wsum)
    }
}

fn ln_coords(cfg: &TileConfig) -> Vec<f64> {
    cfg.sizes().iter().map(|&t| (t as f64).ln()).collect()
}

/// The surrogate-model autotuner.
#[derive(Debug)]
pub struct Autotuner {
    options: TuneOptions,
    rng: StdRng,
}

impl Autotuner {
    /// Creates a tuner with the given options.
    pub fn new(options: TuneOptions) -> Self {
        let rng = StdRng::seed_from_u64(options.seed);
        Autotuner { options, rng }
    }

    /// Maximizes `objective` over `space`. The objective returns `None`
    /// for invalid configurations (unmappable / unexecutable variants).
    pub fn tune<F>(&mut self, space: &TileSpace, objective: F) -> TuneResult
    where
        F: FnMut(&TileConfig) -> Option<f64>,
    {
        self.tune_with_prior(space, objective, None)
    }

    /// [`Autotuner::tune`] warm-started by a [`SurrogatePrior`] fitted on
    /// another device: instead of random bootstrap picks, the candidate
    /// pool is walked in descending predicted-value order until the
    /// surrogate phase takes over. An empty prior degrades to the cold
    /// search.
    pub fn tune_with_prior<F>(
        &mut self,
        space: &TileSpace,
        mut objective: F,
        prior: Option<&SurrogatePrior>,
    ) -> TuneResult
    where
        F: FnMut(&TileConfig) -> Option<f64>,
    {
        let total = space.len();
        // Candidate pool: the whole space for small spaces, a random
        // subsample for huge ones (ytopt samples its parameter space too).
        let pool_cap = 4096;
        let mut pool: Vec<usize> = (0..total).collect();
        if total > pool_cap {
            pool.shuffle(&mut self.rng);
            pool.truncate(pool_cap);
        }
        // The budget cannot exceed the pool actually searched: clamping
        // only to `total` used to leave the random pick spinning forever
        // once every pool entry had been tried.
        let budget = self.options.budget.min(pool.len());

        // Hill climbing follows its own trajectory (whole-space
        // neighbourhoods, so the space-size clamp applies).
        if self.options.strategy == Strategy::HillClimb {
            let hill_budget = self.options.budget.min(total);
            return self.hill_climb(space, &mut objective, hill_budget);
        }

        let warm_start = prior.filter(|p| !p.is_empty());
        if let Some(p) = warm_start {
            // Deterministic seeding: descending predicted value, original
            // pool position as the tie-break (stable sort).
            let mut scored: Vec<(f64, usize)> = pool
                .iter()
                .map(|&idx| (p.predict(&space.config(idx)).unwrap_or(f64::NEG_INFINITY), idx))
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            pool = scored.into_iter().map(|(_, idx)| idx).collect();
        }

        let mut history: Vec<(TileConfig, Option<f64>)> = Vec::with_capacity(budget);
        let mut evaluated: Vec<(Vec<f64>, f64)> = Vec::new(); // (log-coords, value)
        // Not-yet-tried pool entries; picks remove in O(1) (swap) or from
        // the front (prior order), so the search always terminates.
        let mut untried: Vec<usize> = pool;

        let random_only = self.options.strategy == Strategy::Random;
        for step in 0..budget {
            if untried.is_empty() {
                break;
            }
            let pick = if random_only || step < self.options.bootstrap || evaluated.len() < 2 {
                if warm_start.is_some() && !random_only {
                    // Prior-seeded bootstrap: best predicted first.
                    untried.remove(0)
                } else {
                    // Random bootstrap.
                    let j = self.rng.gen_range(0..untried.len());
                    untried.swap_remove(j)
                }
            } else {
                // Acquisition: predicted value by inverse-distance RBF
                // interpolation + exploration bonus on distance.
                let mut best_pos = 0usize;
                let mut best_score = f64::NEG_INFINITY;
                for (pos, &idx) in untried.iter().enumerate() {
                    let c = ln_coords(&space.config(idx));
                    let (mut wsum, mut vsum, mut dmin) = (0.0, 0.0, f64::INFINITY);
                    for (pc, pv) in &evaluated {
                        let d2: f64 = pc
                            .iter()
                            .zip(c.iter())
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        let w = 1.0 / (d2 + 1e-6);
                        wsum += w;
                        vsum += w * pv;
                        dmin = dmin.min(d2.sqrt());
                    }
                    let predicted = vsum / wsum;
                    let score = predicted + self.options.exploration * dmin * predicted.abs();
                    if score > best_score {
                        best_score = score;
                        best_pos = pos;
                    }
                }
                untried.swap_remove(best_pos)
            };
            let cfg = space.config(pick);
            let value = objective(&cfg);
            if let Some(v) = value {
                evaluated.push((ln_coords(&cfg), v));
            }
            history.push((cfg, value));
        }

        let best = history
            .iter()
            .filter_map(|(c, v)| v.map(|v| (c.clone(), v)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("objective must be finite"));
        let tuning_seconds = history.len() as f64 * self.options.seconds_per_eval;
        match best {
            Some((tiles, value)) => TuneResult {
                best_tiles: Some(tiles),
                best_value: value,
                history,
                tuning_seconds,
            },
            None => TuneResult {
                best_tiles: None,
                best_value: f64::NEG_INFINITY,
                history,
                tuning_seconds,
            },
        }
    }
}

impl Autotuner {
    /// Greedy 1-exchange neighbourhood search from a random start.
    fn hill_climb<F>(
        &mut self,
        space: &TileSpace,
        objective: &mut F,
        budget: usize,
    ) -> TuneResult
    where
        F: FnMut(&TileConfig) -> Option<f64>,
    {
        let candidates = space.candidates().to_vec();
        let depth = space.len().max(1);
        let _ = depth;
        let mut history: Vec<(TileConfig, Option<f64>)> = Vec::new();
        let mut evaluate = |cfg: &TileConfig,
                            history: &mut Vec<(TileConfig, Option<f64>)>|
         -> Option<f64> {
            if let Some((_, v)) = history.iter().find(|(c, _)| c == cfg) {
                return *v; // revisits are free (memoized measurement)
            }
            let v = objective(cfg);
            history.push((cfg.clone(), v));
            v
        };
        // Random start (retry a few times if invalid).
        let mut current: Option<(TileConfig, f64)> = None;
        for _ in 0..10 {
            if history.len() >= budget {
                break;
            }
            let idx = self.rng.gen_range(0..space.len());
            let cfg = space.config(idx);
            if let Some(v) = evaluate(&cfg, &mut history) {
                current = Some((cfg, v));
                break;
            }
        }
        'climb: while let Some((ref cfg, best)) = current.clone() {
            if history.len() >= budget {
                break;
            }
            let sizes = cfg.sizes().to_vec();
            let mut improved = false;
            for (dim, &t) in sizes.iter().enumerate() {
                let pos = candidates.iter().position(|&c| c == t);
                let neighbours: Vec<i64> = match pos {
                    Some(p) => [p.checked_sub(1), Some(p + 1)]
                        .into_iter()
                        .flatten()
                        .filter_map(|q| candidates.get(q).copied())
                        .collect(),
                    None => continue,
                };
                for n in neighbours {
                    if history.len() >= budget {
                        break 'climb;
                    }
                    let mut s = sizes.clone();
                    s[dim] = n;
                    let cfg2 = TileConfig::new(s);
                    if let Some(v) = evaluate(&cfg2, &mut history) {
                        if v > best {
                            current = Some((cfg2, v));
                            improved = true;
                            break;
                        }
                    }
                }
                if improved {
                    break;
                }
            }
            if !improved {
                break; // local optimum
            }
        }
        let tuning_seconds = history.len() as f64 * self.options.seconds_per_eval;
        match current {
            Some((tiles, value)) => TuneResult {
                best_tiles: Some(tiles),
                best_value: value,
                history,
                tuning_seconds,
            },
            None => TuneResult {
                best_tiles: None,
                best_value: f64::NEG_INFINITY,
                history,
                tuning_seconds,
            },
        }
    }
}

/// The throughput penalty of Clang/OpenMP offload relative to PPCG's
/// native CUDA (§V-H: "Since ytopt relies on OpenMP, performance
/// decreases compared to PPCG").
pub const OPENMP_OFFLOAD_PENALTY: f64 = 0.55;

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_objective(cfg: &TileConfig) -> Option<f64> {
        let t = cfg.sizes();
        Some(-((t[0] - 32).pow(2) + (t[1] - 64).pow(2)) as f64)
    }

    #[test]
    fn finds_optimum_of_smooth_objective() {
        let space = TileSpace::new(2, vec![4, 8, 16, 32, 64, 128, 256]);
        let mut tuner = Autotuner::new(TuneOptions {
            budget: 30,
            seed: 1,
            ..TuneOptions::default()
        });
        let r = tuner.tune(&space, quad_objective);
        assert_eq!(r.best_tiles.unwrap().sizes(), &[32, 64]);
        assert_eq!(r.history.len(), 30);
    }

    #[test]
    fn beats_pure_random_on_average() {
        let space = TileSpace::new(3, vec![4, 8, 16, 32, 64, 128]);
        let objective = |cfg: &TileConfig| -> Option<f64> {
            let t = cfg.sizes();
            Some(-((t[0] - 16).pow(2) + (t[1] - 64).pow(2) + (t[2] - 8).pow(2)) as f64)
        };
        let mut surrogate_wins = 0;
        for seed in 0..10 {
            let mut smart = Autotuner::new(TuneOptions {
                budget: 25,
                seed,
                bootstrap: 8,
                ..TuneOptions::default()
            });
            let mut random = Autotuner::new(TuneOptions {
                budget: 25,
                seed,
                bootstrap: usize::MAX, // never leaves bootstrap
                ..TuneOptions::default()
            });
            let s = smart.tune(&space, objective).best_value;
            let r = random.tune(&space, objective).best_value;
            if s >= r {
                surrogate_wins += 1;
            }
        }
        assert!(surrogate_wins >= 7, "surrogate won only {surrogate_wins}/10");
    }

    #[test]
    fn deterministic_given_seed() {
        let space = TileSpace::new(2, vec![4, 8, 16, 32]);
        let run = || {
            Autotuner::new(TuneOptions {
                budget: 10,
                seed: 99,
                ..TuneOptions::default()
            })
            .tune(&space, quad_objective)
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_tiles, b.best_tiles);
        let ah: Vec<_> = a.history.iter().map(|(c, _)| c.clone()).collect();
        let bh: Vec<_> = b.history.iter().map(|(c, _)| c.clone()).collect();
        assert_eq!(ah, bh);
    }

    #[test]
    fn invalid_configs_are_skipped_but_recorded() {
        let space = TileSpace::new(1, vec![4, 8, 16, 32]);
        let mut tuner = Autotuner::new(TuneOptions {
            budget: 4,
            seed: 3,
            ..TuneOptions::default()
        });
        let r = tuner.tune(&space, |cfg| {
            if cfg.sizes()[0] >= 16 {
                None
            } else {
                Some(cfg.sizes()[0] as f64)
            }
        });
        assert_eq!(r.history.len(), 4);
        assert_eq!(r.best_tiles.unwrap().sizes(), &[8]);
    }

    #[test]
    fn all_invalid_yields_no_best() {
        let space = TileSpace::new(1, vec![4, 8]);
        let mut tuner = Autotuner::new(TuneOptions {
            budget: 2,
            seed: 3,
            ..TuneOptions::default()
        });
        let r = tuner.tune(&space, |_| None);
        assert!(r.best_tiles.is_none());
    }

    #[test]
    fn tuning_time_scales_with_budget() {
        let space = TileSpace::new(2, vec![4, 8, 16, 32, 64]);
        let mut tuner = Autotuner::new(TuneOptions {
            budget: 25,
            seconds_per_eval: 40.0,
            seed: 5,
            ..TuneOptions::default()
        });
        let r = tuner.tune(&space, quad_objective);
        // 25 evals × 40 s ≈ 17 minutes — the §V-H observation.
        assert!((r.tuning_seconds - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn hill_climb_reaches_local_optimum_of_unimodal_objective() {
        let space = TileSpace::new(2, vec![4, 8, 16, 32, 64, 128, 256]);
        let mut tuner = Autotuner::new(TuneOptions {
            strategy: Strategy::HillClimb,
            budget: 60,
            seed: 11,
            ..TuneOptions::default()
        });
        let r = tuner.tune(&space, quad_objective);
        // The quadratic bowl is unimodal over the candidate lattice, so a
        // greedy climb must end at the optimum.
        assert_eq!(r.best_tiles.unwrap().sizes(), &[32, 64]);
    }

    #[test]
    fn random_strategy_never_uses_surrogate_order() {
        let space = TileSpace::new(3, vec![4, 8, 16, 32]);
        let run = |strategy: Strategy| {
            Autotuner::new(TuneOptions {
                strategy,
                budget: 20,
                seed: 5,
                bootstrap: 3,
                ..TuneOptions::default()
            })
            .tune(&space, quad3_objective)
            .history
            .iter()
            .map(|(c, _)| c.clone())
            .collect::<Vec<_>>()
        };
        let random = run(Strategy::Random);
        let surrogate = run(Strategy::Surrogate);
        assert_eq!(random.len(), 20);
        // Identical seeds, different trajectories after bootstrap.
        assert_ne!(random, surrogate);
    }

    #[test]
    fn strategies_all_find_something_valid() {
        let space = TileSpace::new(2, vec![4, 8, 16, 32, 64]);
        for strategy in [Strategy::Random, Strategy::HillClimb, Strategy::Surrogate] {
            let mut tuner = Autotuner::new(TuneOptions {
                strategy,
                budget: 15,
                seed: 2,
                ..TuneOptions::default()
            });
            let r = tuner.tune(&space, quad_objective);
            assert!(r.best_tiles.is_some(), "{strategy:?}");
        }
    }

    fn quad3_objective(cfg: &TileConfig) -> Option<f64> {
        let t = cfg.sizes();
        Some(-((t[0] - 8).pow(2) + (t[1] - 16).pow(2) + (t[2] - 4).pow(2)) as f64)
    }

    #[test]
    fn budget_beyond_pool_cap_terminates() {
        // Regression: with budget > pool_cap (4096) on a space larger
        // than the pool, the random pick used to spin forever once every
        // pool entry had been tried. Run under a hard timeout.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            // 9^4 = 6561 configs > 4096.
            let space = TileSpace::new(4, vec![4, 8, 16, 32, 64, 128, 256, 512, 1024]);
            let mut tuner = Autotuner::new(TuneOptions {
                strategy: Strategy::Random,
                budget: 5000,
                seed: 7,
                ..TuneOptions::default()
            });
            let r = tuner.tune(&space, |c| Some(-(c.sizes()[0] as f64)));
            let _ = tx.send((r.history.len(), r.best_tiles.is_some()));
        });
        let (evals, found) = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("tuner hung: budget above the pool cap must terminate");
        assert_eq!(evals, 4096, "budget clamps to the subsampled pool");
        assert!(found);
    }

    #[test]
    fn prior_transfer_reduces_evals_to_best() {
        let space = TileSpace::new(2, vec![4, 8, 16, 32, 64, 128, 256]);
        // "Device A": bowl centred at (32, 64).
        let mut a = Autotuner::new(TuneOptions {
            budget: 30,
            seed: 1,
            ..TuneOptions::default()
        });
        let result_a = a.tune(&space, quad_objective);
        let prior = SurrogatePrior::from_result(&result_a);
        assert!(!prior.is_empty());
        assert_eq!(prior.len(), 30);
        // "Device B": correlated objective — same optimum, rescaled axes.
        let objective_b = |cfg: &TileConfig| -> Option<f64> {
            let t = cfg.sizes();
            Some(-(1.3 * ((t[0] - 32).pow(2) as f64) + 0.8 * ((t[1] - 64).pow(2) as f64)))
        };
        let mut cold = Autotuner::new(TuneOptions {
            budget: 30,
            seed: 9,
            ..TuneOptions::default()
        });
        let cold_r = cold.tune(&space, objective_b);
        let mut warm = Autotuner::new(TuneOptions {
            budget: 30,
            seed: 9,
            ..TuneOptions::default()
        });
        let warm_r = warm.tune_with_prior(&space, objective_b, Some(&prior));
        assert_eq!(warm_r.best_tiles.as_ref().unwrap().sizes(), &[32, 64]);
        let (cold_evals, warm_evals) = (
            cold_r.evals_to_best().unwrap(),
            warm_r.evals_to_best().unwrap(),
        );
        assert!(
            warm_evals <= cold_evals,
            "warm start took {warm_evals} evals vs cold {cold_evals}"
        );
        // The very first warm pick is already near the prior's optimum.
        let first = warm_r.history[0].0.sizes().to_vec();
        assert!((first[0] - 32).abs() <= 32 && (first[1] - 64).abs() <= 64, "{first:?}");
    }

    #[test]
    fn empty_prior_degrades_to_cold_search() {
        let space = TileSpace::new(2, vec![4, 8, 16, 32]);
        let run_cold = || {
            Autotuner::new(TuneOptions {
                budget: 8,
                seed: 21,
                ..TuneOptions::default()
            })
            .tune(&space, quad_objective)
        };
        let run_empty_prior = || {
            Autotuner::new(TuneOptions {
                budget: 8,
                seed: 21,
                ..TuneOptions::default()
            })
            .tune_with_prior(&space, quad_objective, Some(&SurrogatePrior::default()))
        };
        let a: Vec<_> = run_cold().history.into_iter().map(|(c, _)| c).collect();
        let b: Vec<_> = run_empty_prior().history.into_iter().map(|(c, _)| c).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn evals_to_best_indexes_first_attainment() {
        let space = TileSpace::new(1, vec![4, 8, 16]);
        let mut tuner = Autotuner::new(TuneOptions {
            strategy: Strategy::Random,
            budget: 3,
            seed: 2,
            ..TuneOptions::default()
        });
        let r = tuner.tune(&space, |c| Some(c.sizes()[0] as f64));
        let k = r.evals_to_best().unwrap();
        assert_eq!(r.history[k - 1].1, Some(r.best_value));
        assert!(r.history[..k - 1].iter().all(|(_, v)| *v != Some(r.best_value)));
        // No successful evaluation → no index.
        let mut none = Autotuner::new(TuneOptions {
            budget: 3,
            seed: 2,
            ..TuneOptions::default()
        });
        assert_eq!(none.tune(&space, |_| None).evals_to_best(), None);
    }

    #[test]
    fn budget_capped_by_space_size() {
        let space = TileSpace::new(1, vec![4, 8]);
        let mut tuner = Autotuner::new(TuneOptions {
            budget: 100,
            seed: 0,
            ..TuneOptions::default()
        });
        let r = tuner.tune(&space, |c| Some(c.sizes()[0] as f64));
        assert_eq!(r.history.len(), 2);
        assert_eq!(r.best_tiles.unwrap().sizes(), &[8]);
    }
}
