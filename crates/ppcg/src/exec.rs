//! Deterministic GPU-execution emulator for compiled mappings.
//!
//! Executes the semantics of the generated CUDA text — grid/block index
//! decoding, serial tile loops with `min` boundary guards, cyclic
//! per-thread point loops, `__shared__` staging with `__syncthreads()`
//! barrier phases, and per-time-step launches — block by block and thread
//! by thread on the host, against an [`eatss_affine::interp::Store`].
//!
//! Out-of-bounds conventions match the interpreter exactly: global reads
//! outside an array return `0.0` and writes outside are dropped, so the
//! emulator and the untiled interpreter are comparable element-wise
//! (bitwise, in fact: every write uses all mapped dims — otherwise the
//! output dependence would have serialized the dim — so each output
//! element is owned by one thread, and the per-element accumulation order
//! is ascending serial order in both executions).
//!
//! # Execution engines
//!
//! By default each kernel is compiled once per
//! [`execute_mapped_kernel`] call into an
//! [`ExecPlan`](eatss_affine::plan::ExecPlan): reads that match a staged
//! group are pre-routed to its buffer at compile time (one slot lookup
//! instead of a string-compare group search per read per point), all
//! other accesses lower to linear address functions, and the RHS runs as
//! a postfix opcode tape. [`ExecEngine::Reference`] forces the original
//! per-point tree-walk through
//! [`exec_point_hooked`](eatss_affine::interp::exec_point_hooked); both
//! engines produce bitwise-identical stores and identical [`ExecStats`]
//! (differentially tested over the whole benchmark suite).
//!
//! What is *not* modeled: warp scheduling, memory timing, and racy
//! unsynchronized accesses (blocks and threads are independent by
//! construction of the mapping, so any interleaving is equivalent —
//! except across a skipped barrier, which [`BarrierFidelity::SkipLoadBarrier`]
//! exposes deliberately).

use crate::mapping::GpuMapping;
use eatss_affine::interp::{exec_point_hooked, Array, Store};
use eatss_affine::ir::{ArrayRef, Kernel};
use eatss_affine::plan::{ExecPlan, RouteSource, RowScratch};
use eatss_affine::{ProblemSizes, Program};
use std::fmt;

/// How faithfully `__syncthreads()` phases are honored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierFidelity {
    /// The barrier after the cooperative load completes before any thread
    /// computes — the semantics of the generated code.
    #[default]
    Faithful,
    /// The load barrier is skipped: each thread loads only its own cyclic
    /// share of the staged box and immediately computes, so it observes
    /// stale (or initial-zero) values for elements other threads stage.
    /// Used by tests to prove the oracle is barrier-sensitive.
    SkipLoadBarrier,
}

/// Which execution core runs the statements at each point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Per-kernel heuristic: kernels whose total iteration count is
    /// below [`AUTO_PLAN_THRESHOLD_EMULATOR_POINTS`] run on the
    /// reference walker (plan compilation plus per-row route dispatch
    /// cost more than they save on tiny domains — bench_oracle measured
    /// jacobi-1d at wall_ratio 0.982 under an unconditional `Plan`);
    /// everything larger gets the compiled plan.
    #[default]
    Auto,
    /// Compile the kernel into an [`ExecPlan`] (staged reads pre-routed,
    /// addresses linearized, RHS as an opcode tape). Kernels the plan
    /// compiler cannot lower silently fall back to the reference walk.
    Plan,
    /// The original tree-walking per-point execution, retained as the
    /// executable specification the plan engine is tested against.
    Reference,
}

/// Iteration-count floor below which compiling an
/// [`ExecPlan`](eatss_affine::plan::ExecPlan) stops paying for itself in
/// general: one compile amortizes over the kernel's points; under ~1k
/// points the compile dominates.
pub const AUTO_PLAN_THRESHOLD_POINTS: i64 = 1024;

/// The *emulator's* [`ExecEngine::Auto`] crossover, sitting higher than
/// the generic [`AUTO_PLAN_THRESHOLD_POINTS`]: emulated plan rows also
/// pay route dispatch and per-row staging-box checks, so the compile
/// amortizes later. bench_oracle measured the forced-`Plan` emulator at
/// wall_ratio 0.982 on a 51-point domain (jacobi-1d) and only ~1.0 near
/// 900 points (fdtd-2d); no PolyBench kernel at sweep sizes has a domain
/// between these thresholds, so raising the emulator's floor changes no
/// current routing except keeping tiny stencil domains on the reference
/// walker.
pub const AUTO_PLAN_THRESHOLD_EMULATOR_POINTS: i64 = 2048;

/// Emulator knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Barrier semantics (see [`BarrierFidelity`]).
    pub barrier_fidelity: BarrierFidelity,
    /// Execution core (see [`ExecEngine`]).
    pub engine: ExecEngine,
}

/// Execution counters, for trace output and harness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Kernel launches performed (product of time-loop trips per kernel).
    pub launches: u64,
    /// Blocks executed across all launches.
    pub blocks: u64,
    /// `__syncthreads()` barriers honored.
    pub barriers: u64,
    /// Elements loaded into staged shared buffers.
    pub staged_elems: u64,
    /// Iteration points executed.
    pub points: u64,
}

impl ExecStats {
    fn absorb(&mut self, other: ExecStats) {
        self.launches += other.launches;
        self.blocks += other.blocks;
        self.barriers += other.barriers;
        self.staged_elems += other.staged_elems;
        self.points += other.points;
    }
}

/// Emulation failures — each one is a genuine bug in the mapping or the
/// generated code, not a data problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A problem-size parameter is unbound.
    UnboundParameter(String),
    /// A staged group is written: the generated code has no write-back
    /// phase, so staging it would drop the writes.
    StagedWrite {
        /// Kernel name.
        kernel: String,
        /// Array name.
        array: String,
    },
    /// A read routed to a staged buffer fell outside the staged box —
    /// the cooperative load under-covers the tile's accesses.
    StagedReadOutOfBox {
        /// Kernel name.
        kernel: String,
        /// Array name.
        array: String,
        /// The out-of-box global index.
        index: Vec<i64>,
    },
    /// The staged box needs more elements than the `__shared__`
    /// declaration provides.
    SharedUndersized {
        /// Kernel name.
        kernel: String,
        /// Array name.
        array: String,
        /// Elements the box actually needs.
        box_elems: i64,
        /// Elements the mapping declared.
        declared_elems: i64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundParameter(p) => {
                write!(f, "problem-size parameter `{p}` is unbound")
            }
            ExecError::StagedWrite { kernel, array } => write!(
                f,
                "{kernel}: staged array `{array}` is written but staging has no write-back"
            ),
            ExecError::StagedReadOutOfBox { kernel, array, index } => write!(
                f,
                "{kernel}: read of `{array}`{index:?} outside its staged box"
            ),
            ExecError::SharedUndersized {
                kernel,
                array,
                box_elems,
                declared_elems,
            } => write!(
                f,
                "{kernel}: staged box of `{array}` needs {box_elems} elems, \
                 __shared__ declares {declared_elems}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// A staged group prepared for emulation: which read refs route to the
/// buffer, and the representative subscripts the box is derived from.
struct StagedGroup<'a> {
    array: String,
    representative: &'a ArrayRef,
    fastest_offsets: (i64, i64),
    declared_elems: i64,
    /// Current box: per-subscript `(lo, hi)` inclusive global bounds.
    bounds: Vec<(i64, i64)>,
    /// Buffer contents, row-major over the box.
    data: Vec<f64>,
}

impl StagedGroup<'_> {
    fn box_elems(&self) -> i64 {
        self.bounds.iter().map(|(lo, hi)| hi - lo + 1).product()
    }

    /// Flattens a global multi-index into the box, or `None` if outside.
    fn flatten(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.bounds.len() {
            return None;
        }
        let mut flat: i64 = 0;
        for (&i, &(lo, hi)) in idx.iter().zip(&self.bounds) {
            if i < lo || i > hi {
                return None;
            }
            flat = flat * (hi - lo + 1) + (i - lo);
        }
        Some(flat as usize)
    }

    /// Cooperative-load fast path: fills the box from `array` row by row
    /// (last subscript contiguous), with out-of-bounds elements zero —
    /// element-for-element what a per-index `Array::get` loop produces.
    fn load_box(&mut self, array: Option<&Array>) {
        let elems = self.box_elems() as usize;
        self.data.clear();
        self.data.resize(elems, 0.0);
        let array = match array {
            Some(a) if a.extents().len() == self.bounds.len() => a,
            // Missing array or rank mismatch: every read misses → zeros.
            _ => return,
        };
        let n = self.bounds.len();
        if n == 0 {
            self.data[0] = array.data()[0];
            return;
        }
        let extents = array.extents();
        let (last_lo, last_hi) = self.bounds[n - 1];
        let row_len = (last_hi - last_lo + 1) as usize;
        // Overlap of the box row with the array's last dimension.
        let ov_lo = last_lo.max(0);
        let ov_hi = last_hi.min(extents[n - 1] - 1);
        let mut strides = vec![1i64; n];
        for p in (0..n - 1).rev() {
            strides[p] = strides[p + 1] * extents[p + 1];
        }
        let mut idx: Vec<i64> = self.bounds[..n - 1].iter().map(|&(lo, _)| lo).collect();
        for row in 0..elems / row_len {
            let mut base = 0i64;
            let mut oob = false;
            for (p, &v) in idx.iter().enumerate() {
                if v < 0 || v >= extents[p] {
                    oob = true;
                    break;
                }
                base += v * strides[p];
            }
            if !oob && ov_lo <= ov_hi {
                let dst_off = row * row_len + (ov_lo - last_lo) as usize;
                let len = (ov_hi - ov_lo + 1) as usize;
                let src = (base + ov_lo) as usize;
                self.data[dst_off..dst_off + len]
                    .copy_from_slice(&array.data()[src..src + len]);
            }
            for p in (0..idx.len()).rev() {
                idx[p] += 1;
                if idx[p] <= self.bounds[p].1 {
                    break;
                }
                idx[p] = self.bounds[p].0;
            }
        }
    }
}

/// Two refs access the same staged lines iff they agree on everything but
/// the fastest subscript's constant offset — the grouping key of
/// `AccessAnalysis::collect_groups`.
fn same_group(a: &ArrayRef, b: &ArrayRef) -> bool {
    if a.array != b.array || a.subscripts.len() != b.subscripts.len() {
        return false;
    }
    let last = a.subscripts.len().wrapping_sub(1);
    a.subscripts.iter().zip(&b.subscripts).enumerate().all(|(p, (sa, sb))| {
        sa.terms() == sb.terms() && (p == last || sa.offset() == sb.offset())
    })
}

/// The staged route a statement read resolves to, if any — the routing
/// rule shared by plan compilation and the reference hook.
fn route_of(staged: &[StagedGroup<'_>], r: &ArrayRef) -> Option<usize> {
    staged
        .iter()
        .position(|g| g.array == r.array && same_group(g.representative, r))
}

/// Compiled plans shared across a batch of configurations of one kernel,
/// keyed by staged-route signature: a plan embeds the store layout, the
/// trip counts, and — per statement read — the staged route it resolves
/// to. The first two are batch invariants; only the route assignment
/// follows a mapping's staging decisions, so configurations that stage
/// the same reads share one compiled plan. An entry holding `None`
/// caches a kernel the plan compiler cannot lower.
#[derive(Default)]
struct KernelPlanCache {
    entries: Vec<(Vec<Option<usize>>, Option<ExecPlan>)>,
}

impl KernelPlanCache {
    fn lookup_or_compile(
        &mut self,
        kernel: &Kernel,
        trips: &[i64],
        store: &Store,
        staged: &[StagedGroup<'_>],
    ) -> Option<&ExecPlan> {
        let signature: Vec<Option<usize>> = kernel
            .stmts
            .iter()
            .flat_map(|s| s.reads.iter())
            .map(|r| route_of(staged, r))
            .collect();
        let pos = match self.entries.iter().position(|(sig, _)| *sig == signature) {
            Some(pos) => pos,
            None => {
                let plan = ExecPlan::compile_routed(kernel, trips, store, |r| route_of(staged, r));
                self.entries.push((signature, plan));
                self.entries.len() - 1
            }
        };
        self.entries[pos].1.as_ref()
    }
}

/// Serves the plan's pre-routed staged reads, with the same
/// out-of-box accounting as the reference hook: the first failure is
/// recorded, the read returns 0.
struct StagedRouter<'k, 'a> {
    staged: &'a [StagedGroup<'k>],
    kernel: &'a str,
    failure: Option<ExecError>,
}

impl StagedRouter<'_, '_> {
    fn record_out_of_box(&mut self, array: &str, index: &[i64]) {
        if self.failure.is_none() {
            self.failure = Some(ExecError::StagedReadOutOfBox {
                kernel: self.kernel.to_owned(),
                array: array.to_owned(),
                index: index.to_vec(),
            });
        }
    }
}

impl RouteSource for StagedRouter<'_, '_> {
    fn read(&mut self, route: usize, index: &[i64]) -> f64 {
        let g = &self.staged[route];
        match g.flatten(index) {
            Some(flat) => g.data[flat],
            None => {
                self.record_out_of_box(&g.array, index);
                0.0
            }
        }
    }

    fn row(&mut self, route: usize, start: &[i64], delta: &[i64], count: i64) -> Option<(i64, i64)> {
        // Subscripts move monotonically along a row, so checking the two
        // endpoints against the box proves the whole row stays inside it;
        // the box flatten is then linear in the subscripts.
        let g = &self.staged[route];
        if start.len() != g.bounds.len() {
            return None;
        }
        let mut flat = 0i64;
        let mut flat_delta = 0i64;
        for ((&s, &d), &(lo, hi)) in start.iter().zip(delta).zip(&g.bounds) {
            let last = s + (count - 1) * d;
            if s.min(last) < lo || s.max(last) > hi {
                return None;
            }
            let extent = hi - lo + 1;
            flat = flat * extent + (s - lo);
            flat_delta = flat_delta * extent + d;
        }
        Some((flat, flat_delta))
    }

    fn read_flat(&mut self, route: usize, flat: i64) -> f64 {
        self.staged[route].data[flat as usize]
    }
}

/// Executes one compiled kernel over the store.
///
/// # Errors
///
/// See [`ExecError`].
pub fn execute_mapped_kernel(
    kernel: &Kernel,
    mapping: &GpuMapping,
    sizes: &ProblemSizes,
    store: &mut Store,
    opts: &ExecOptions,
) -> Result<ExecStats, ExecError> {
    execute_mapped_kernel_cached(kernel, mapping, sizes, store, opts, None)
}

/// [`execute_mapped_kernel`] with an optional shared plan cache — the
/// batched path's hook (see [`execute_compiled_batch`]).
fn execute_mapped_kernel_cached(
    kernel: &Kernel,
    mapping: &GpuMapping,
    sizes: &ProblemSizes,
    store: &mut Store,
    opts: &ExecOptions,
    cache: Option<&mut KernelPlanCache>,
) -> Result<ExecStats, ExecError> {
    let mut span = eatss_trace::span("exec", "kernel");
    if span.is_active() {
        span.arg("kernel", kernel.name.as_str());
        span.arg("tiles", mapping.tiles.to_string());
    }
    let depth = kernel.depth();
    let trips: Vec<i64> = (0..depth)
        .map(|d| {
            kernel
                .trip_count(d, sizes)
                .map_err(ExecError::UnboundParameter)
        })
        .collect::<Result<_, _>>()?;
    let mut stats = ExecStats::default();
    if trips.iter().any(|&t| t <= 0) {
        return Ok(stats);
    }
    let tiles = mapping.tiles.sizes();
    let time_dims: Vec<usize> = (0..depth)
        .filter(|&d| kernel.dims[d].explicit_serial)
        .collect();
    let serial_dims: Vec<usize> = (0..depth)
        .filter(|&d| !mapping.mapped_dims.contains(&d) && !kernel.dims[d].explicit_serial)
        .collect();

    // Prepare staged groups and route each statement read to its buffer.
    let mut staged: Vec<StagedGroup<'_>> = Vec::new();
    for r in &mapping.refs {
        if !r.staged {
            continue;
        }
        if r.group.is_written {
            return Err(ExecError::StagedWrite {
                kernel: kernel.name.clone(),
                array: r.group.array.clone(),
            });
        }
        staged.push(StagedGroup {
            array: r.group.array.clone(),
            representative: &r.group.representative,
            fastest_offsets: r.group.fastest_offsets,
            declared_elems: r.tile_footprint_elems,
            bounds: Vec::new(),
            data: Vec::new(),
        });
    }

    // Choose the execution core once per kernel: staged reads resolve to
    // their route here, at compile time, instead of a group search per
    // read per point.
    let use_plan = match opts.engine {
        ExecEngine::Reference => false,
        ExecEngine::Plan => true,
        ExecEngine::Auto => {
            trips.iter().product::<i64>() >= AUTO_PLAN_THRESHOLD_EMULATOR_POINTS
        }
    };
    let owned: Option<ExecPlan>;
    let exec: Option<&ExecPlan> = if !use_plan {
        None
    } else {
        match cache {
            Some(cache) => cache.lookup_or_compile(kernel, &trips, store, &staged),
            None => {
                owned = ExecPlan::compile_routed(kernel, &trips, store, |r| route_of(&staged, r));
                owned.as_ref()
            }
        }
    };
    let mut scratch = match exec {
        Some(plan) => plan.scratch(),
        None => RowScratch::default(),
    };

    // Thread coordinates in linear order, x fastest (CUDA convention) —
    // built once per kernel, shared by every launch and tile step.
    let threads_total: i64 = mapping.thread_extents.iter().product();
    let thread_coords: Vec<Vec<i64>> = {
        let mut all = Vec::with_capacity(threads_total as usize);
        let mut c = vec![0i64; mapping.thread_extents.len()];
        'outer: loop {
            all.push(c.clone());
            for (p, v) in c.iter_mut().enumerate() {
                *v += 1;
                if *v < mapping.thread_extents[p] {
                    continue 'outer;
                }
                *v = 0;
            }
            break;
        }
        all
    };

    // --- launch loop over time-dim values ----------------------------------
    let mut tvals: Vec<i64> = vec![0; time_dims.len()];
    loop {
        stats.absorb(run_launch(
            kernel,
            mapping,
            &trips,
            tiles,
            &time_dims,
            &tvals,
            &serial_dims,
            &thread_coords,
            exec,
            &mut scratch,
            &mut staged,
            store,
            opts,
        )?);
        // Increment the time multi-index (lexicographic, last fastest).
        let mut d = time_dims.len();
        loop {
            if d == 0 {
                if span.is_active() {
                    span.arg("points", stats.points);
                    span.arg("blocks", stats.blocks);
                }
                eatss_trace::counter_add("exec.points", stats.points);
                eatss_trace::counter_add("exec.blocks", stats.blocks);
                return Ok(stats);
            }
            d -= 1;
            tvals[d] += 1;
            if tvals[d] < trips[time_dims[d]] {
                break;
            }
            tvals[d] = 0;
        }
    }
}

/// One grid launch: every block, every serial tile step, staging + compute.
#[allow(clippy::too_many_arguments)]
fn run_launch(
    kernel: &Kernel,
    mapping: &GpuMapping,
    trips: &[i64],
    tiles: &[i64],
    time_dims: &[usize],
    tvals: &[i64],
    serial_dims: &[usize],
    thread_coords: &[Vec<i64>],
    exec: Option<&ExecPlan>,
    scratch: &mut RowScratch,
    staged: &mut [StagedGroup<'_>],
    store: &mut Store,
    opts: &ExecOptions,
) -> Result<ExecStats, ExecError> {
    let mut stats = ExecStats {
        launches: 1,
        ..ExecStats::default()
    };
    let mut block = vec![0i64; mapping.grid_extents.len()];
    'blocks: loop {
        stats.blocks += 1;
        // Tile origins along mapped dims for this block.
        let origins: Vec<i64> = mapping
            .mapped_dims
            .iter()
            .enumerate()
            .map(|(pos, &d)| block[pos] * tiles[d])
            .collect();
        // Reset persistent buffers per block (shared memory has block
        // lifetime; contents start undefined — zeros here, which the
        // skip-barrier mode deliberately observes).
        for g in staged.iter_mut() {
            g.bounds.clear();
            g.data.clear();
        }
        // Serial tile loop (lexicographic over serial-dim tile indices).
        let mut step = vec![0i64; serial_dims.len()];
        loop {
            let sorigins: Vec<i64> = serial_dims
                .iter()
                .zip(&step)
                .map(|(&d, &s)| s * tiles[d])
                .collect();
            run_step(
                kernel,
                mapping,
                trips,
                tiles,
                time_dims,
                tvals,
                serial_dims,
                &sorigins,
                &origins,
                thread_coords,
                exec,
                scratch,
                staged,
                store,
                opts,
                &mut stats,
            )?;
            // Advance the serial step odometer (last dim fastest).
            let mut advanced = false;
            let mut d = serial_dims.len();
            while d > 0 {
                d -= 1;
                step[d] += 1;
                if step[d] * tiles[serial_dims[d]] < trips[serial_dims[d]] {
                    advanced = true;
                    break;
                }
                step[d] = 0;
            }
            if !advanced {
                break;
            }
        }
        // Advance the block index (x fastest, CUDA linear order).
        let mut p = 0;
        loop {
            if p == block.len() {
                break 'blocks;
            }
            block[p] += 1;
            if block[p] < mapping.grid_extents[p] {
                continue 'blocks;
            }
            block[p] = 0;
            p += 1;
        }
    }
    Ok(stats)
}

/// One serial tile step inside one block: staging phase, barrier, compute.
#[allow(clippy::too_many_arguments)]
fn run_step(
    kernel: &Kernel,
    mapping: &GpuMapping,
    trips: &[i64],
    tiles: &[i64],
    time_dims: &[usize],
    tvals: &[i64],
    serial_dims: &[usize],
    sorigins: &[i64],
    origins: &[i64],
    thread_coords: &[Vec<i64>],
    exec: Option<&ExecPlan>,
    scratch: &mut RowScratch,
    staged: &mut [StagedGroup<'_>],
    store: &mut Store,
    opts: &ExecOptions,
    stats: &mut ExecStats,
) -> Result<(), ExecError> {
    let depth = kernel.depth();
    // Per-dim value ranges for the staging box.
    let mut ranges = vec![(0i64, 0i64); depth];
    for (i, &d) in time_dims.iter().enumerate() {
        ranges[d] = (tvals[i], tvals[i]);
    }
    for (i, &d) in serial_dims.iter().enumerate() {
        ranges[d] = (sorigins[i], (sorigins[i] + tiles[d]).min(trips[d]) - 1);
    }
    for (pos, &d) in mapping.mapped_dims.iter().enumerate() {
        ranges[d] = (origins[pos], (origins[pos] + tiles[d]).min(trips[d]) - 1);
    }

    // --- staging phase ------------------------------------------------------
    for g in staged.iter_mut() {
        let nsubs = g.representative.subscripts.len();
        let mut bounds = Vec::with_capacity(nsubs);
        for (p, s) in g.representative.subscripts.iter().enumerate() {
            let mut lo = 0i64;
            let mut hi = 0i64;
            for &(d, c) in s.terms() {
                let (rlo, rhi) = ranges[d];
                if c >= 0 {
                    lo += c * rlo;
                    hi += c * rhi;
                } else {
                    lo += c * rhi;
                    hi += c * rlo;
                }
            }
            if p + 1 == nsubs {
                // Fastest subscript: span all member offsets.
                lo += g.fastest_offsets.0;
                hi += g.fastest_offsets.1;
            } else {
                lo += s.offset();
                hi += s.offset();
            }
            bounds.push((lo, hi));
        }
        g.bounds = bounds;
        let elems = g.box_elems();
        if elems > g.declared_elems {
            return Err(ExecError::SharedUndersized {
                kernel: kernel.name.clone(),
                array: g.array.clone(),
                box_elems: elems,
                declared_elems: g.declared_elems,
            });
        }
        stats.staged_elems += elems as u64;
        match opts.barrier_fidelity {
            BarrierFidelity::Faithful => {
                // Cooperative load, then the barrier: the buffer is fully
                // populated before any thread computes.
                g.load_box(store.get(&g.array));
                stats.barriers += 1;
            }
            BarrierFidelity::SkipLoadBarrier => {
                // Loads happen per-thread, interleaved with compute below;
                // keep whatever was in the buffer (stale or zero) and only
                // grow it to the box size.
                g.data.resize(elems as usize, 0.0);
            }
        }
    }

    // --- compute phase ------------------------------------------------------
    let mut point = vec![0i64; depth];
    for (i, &d) in time_dims.iter().enumerate() {
        point[d] = tvals[i];
    }
    for (tl, coord) in thread_coords.iter().enumerate() {
        if opts.barrier_fidelity == BarrierFidelity::SkipLoadBarrier {
            // This thread loads only its cyclic share before computing.
            let nthreads = thread_coords.len();
            for g in staged.iter_mut() {
                let array = store.get(&g.array);
                let elems = g.data.len();
                let mut idx: Vec<i64> = g.bounds.iter().map(|&(lo, _)| lo).collect();
                for flat in 0..elems {
                    if flat % nthreads == tl {
                        g.data[flat] = array.map_or(0.0, |a| a.get(&idx));
                    }
                    for p in (0..idx.len()).rev() {
                        idx[p] += 1;
                        if idx[p] <= g.bounds[p].1 {
                            break;
                        }
                        idx[p] = g.bounds[p].0;
                    }
                }
            }
        }
        // Serial point loops (dim order), then mapped cyclic point loops —
        // the loop structure of the generated kernel.
        let mut router = StagedRouter {
            staged,
            kernel: &kernel.name,
            failure: None,
        };
        run_thread_points(
            kernel, mapping, trips, tiles, serial_dims, sorigins, origins, coord, &mut point,
            0, exec, scratch, &mut router, store, stats,
        )?;
    }
    if !staged.is_empty() {
        stats.barriers += 1; // barrier after the compute phase
    }
    Ok(())
}

/// Recursively enumerates this thread's points: serial point dims first
/// (in dim order), then the mapped dims' cyclic loops (x innermost), and
/// executes the kernel statements at each point through the chosen engine
/// (staged reads pre-routed by the plan, or the reference staging hook).
/// Classification of the mapped cyclic loops strictly inside position
/// `below` for one thread: do they contribute no point at all, exactly
/// one (coordinates assigned into `point`), or more than one?
enum InnerLoops {
    Empty,
    Singleton,
    Multi,
}

fn inner_mapped_loops(
    mapping: &GpuMapping,
    tiles: &[i64],
    trips: &[i64],
    origins: &[i64],
    coord: &[i64],
    point: &mut [i64],
    below: usize,
) -> InnerLoops {
    for pos in (0..below).rev() {
        let d = mapping.mapped_dims[pos];
        let end = (origins[pos] + tiles[d]).min(trips[d]);
        let start = origins[pos] + coord[pos];
        if start >= end {
            return InnerLoops::Empty;
        }
        if start + mapping.thread_extents[pos] < end {
            return InnerLoops::Multi;
        }
        point[d] = start;
    }
    InnerLoops::Singleton
}

#[allow(clippy::too_many_arguments)]
fn run_thread_points(
    kernel: &Kernel,
    mapping: &GpuMapping,
    trips: &[i64],
    tiles: &[i64],
    serial_dims: &[usize],
    sorigins: &[i64],
    origins: &[i64],
    coord: &[i64],
    point: &mut Vec<i64>,
    level: usize,
    exec: Option<&ExecPlan>,
    scratch: &mut RowScratch,
    router: &mut StagedRouter<'_, '_>,
    store: &mut Store,
    stats: &mut ExecStats,
) -> Result<(), ExecError> {
    if level < serial_dims.len() {
        let d = serial_dims[level];
        let end = (sorigins[level] + tiles[d]).min(trips[d]);
        if level + 1 == serial_dims.len() {
            // When every mapped cyclic loop is a singleton for this
            // thread (tile extent ≤ thread extent), the innermost serial
            // point loop is the hot loop: run it as a plan row.
            if let Some(plan) = exec {
                match inner_mapped_loops(mapping, tiles, trips, origins, coord, point, mapping.mapped_dims.len()) {
                    InnerLoops::Empty => return Ok(()),
                    InnerLoops::Singleton => {
                        let count = end - sorigins[level];
                        if count > 0 {
                            stats.points += count as u64;
                            point[d] = sorigins[level];
                            plan.exec_row_routed(store, point, d, count, 1, scratch, router);
                            if let Some(e) = router.failure.take() {
                                return Err(e);
                            }
                        }
                        return Ok(());
                    }
                    InnerLoops::Multi => {}
                }
            }
        }
        let mut v = sorigins[level];
        while v < end {
            point[d] = v;
            run_thread_points(
                kernel, mapping, trips, tiles, serial_dims, sorigins, origins, coord, point,
                level + 1, exec, scratch, router, store, stats,
            )?;
            v += 1;
        }
        return Ok(());
    }
    // Mapped dims, outermost last-mapped first, x (pos 0) innermost.
    let m = level - serial_dims.len();
    if m < mapping.mapped_dims.len() {
        let pos = mapping.mapped_dims.len() - 1 - m;
        let d = mapping.mapped_dims[pos];
        let end = (origins[pos] + tiles[d]).min(trips[d]);
        let step = mapping.thread_extents[pos];
        let start = origins[pos] + coord[pos];
        // This cyclic loop is the innermost one that iterates when every
        // loop inside it is a singleton for this thread: run it as a
        // plan row (point-loop multiplicity > 1, or the x loop itself).
        if let Some(plan) = exec {
            match inner_mapped_loops(mapping, tiles, trips, origins, coord, point, pos) {
                InnerLoops::Empty => return Ok(()),
                InnerLoops::Singleton => {
                    let count = if start < end { (end - start + step - 1) / step } else { 0 };
                    if count > 0 {
                        stats.points += count as u64;
                        point[d] = start;
                        plan.exec_row_routed(store, point, d, count, step, scratch, router);
                        if let Some(e) = router.failure.take() {
                            return Err(e);
                        }
                    }
                    return Ok(());
                }
                InnerLoops::Multi => {}
            }
        }
        let mut v = start;
        while v < end {
            point[d] = v;
            run_thread_points(
                kernel, mapping, trips, tiles, serial_dims, sorigins, origins, coord, point,
                level + 1, exec, scratch, router, store, stats,
            )?;
            v += mapping.thread_extents[pos];
        }
        return Ok(());
    }
    // A full point: execute every statement through the chosen engine.
    stats.points += 1;
    match exec {
        Some(plan) => plan.exec_point_routed(store, point, router),
        None => {
            let staged_ref = router.staged;
            let mut failure: Option<ExecError> = None;
            {
                let kernel_name = router.kernel;
                let mut hook = |r: &ArrayRef, idx: &[i64]| -> Option<f64> {
                    let g = staged_ref
                        .iter()
                        .find(|g| g.array == r.array && same_group(g.representative, r))?;
                    match g.flatten(idx) {
                        Some(flat) => Some(g.data[flat]),
                        None => {
                            if failure.is_none() {
                                failure = Some(ExecError::StagedReadOutOfBox {
                                    kernel: kernel_name.to_owned(),
                                    array: r.array.clone(),
                                    index: idx.to_vec(),
                                });
                            }
                            Some(0.0)
                        }
                    }
                };
                exec_point_hooked(kernel, store, point, &mut hook);
            }
            if let Some(e) = failure {
                router.failure.get_or_insert(e);
            }
        }
    }
    match router.failure.take() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Executes a whole compiled program (every kernel in order) over the
/// store, mirroring the generated host `main`.
///
/// # Errors
///
/// See [`ExecError`].
pub fn execute_compiled(
    program: &Program,
    mappings: &[GpuMapping],
    sizes: &ProblemSizes,
    store: &mut Store,
    opts: &ExecOptions,
) -> Result<ExecStats, ExecError> {
    let mut stats = ExecStats::default();
    for (kernel, mapping) in program.kernels.iter().zip(mappings) {
        stats.absorb(execute_mapped_kernel(kernel, mapping, sizes, store, opts)?);
    }
    Ok(stats)
}

/// Executes one program under many tile configurations, compiling each
/// distinct per-kernel plan once and sharing it across the batch.
///
/// Within a batch the problem sizes (hence trip counts) and — when every
/// store carries the layout of `stores[0]` — the slot layout are
/// invariant; only the staged-route assignment varies with the tile
/// configuration. Plans are therefore cached per kernel keyed by route
/// signature ([`KernelPlanCache`]), so configs that stage the same reads
/// reuse one compiled plan instead of recompiling per config. A store
/// whose layout diverges from `stores[0]` falls back to the uncached
/// [`execute_compiled`]; results are bitwise-identical to running each
/// config through `execute_compiled` on its own.
pub fn execute_compiled_batch(
    program: &Program,
    configs: &[Vec<GpuMapping>],
    sizes: &ProblemSizes,
    stores: &mut [Store],
    opts: &ExecOptions,
) -> Vec<Result<ExecStats, ExecError>> {
    assert_eq!(
        configs.len(),
        stores.len(),
        "one store per tile configuration"
    );
    let Some(first) = stores.first() else {
        return Vec::new();
    };
    let layout = eatss_affine::interp::store_layout(first);
    let mut caches: Vec<KernelPlanCache> = program
        .kernels
        .iter()
        .map(|_| KernelPlanCache::default())
        .collect();
    configs
        .iter()
        .zip(stores.iter_mut())
        .map(|(mappings, store)| {
            if eatss_affine::interp::store_layout(store) != layout {
                return execute_compiled(program, mappings, sizes, store, opts);
            }
            let mut stats = ExecStats::default();
            for ((kernel, mapping), cache) in
                program.kernels.iter().zip(mappings).zip(&mut caches)
            {
                stats.absorb(execute_mapped_kernel_cached(
                    kernel,
                    mapping,
                    sizes,
                    store,
                    opts,
                    Some(cache),
                )?);
            }
            Ok(stats)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::CompileOptions;
    use crate::oracle::seed_store;
    use eatss_affine::interp::{compare_stores, run_program};
    use eatss_affine::parser::parse_program;
    use eatss_gpusim::GpuArch;

    const MM: &str = "kernel mm(M, N, P) {
        for (i: M) for (j: N) for (k: P)
          C[i][j] += A[i][k] * B[k][j];
      }";

    fn plan_opts() -> ExecOptions {
        ExecOptions {
            engine: ExecEngine::Plan,
            ..ExecOptions::default()
        }
    }

    fn emulate(
        src: &str,
        tiles: Vec<i64>,
        sizes: &[(&str, i64)],
        opts: &ExecOptions,
    ) -> (Store, Store, ExecStats) {
        let p = parse_program(src).unwrap();
        let sizes = ProblemSizes::new(sizes.iter().cloned());
        let compiled = crate::Ppcg::new(GpuArch::ga100())
            .compile(&p, &eatss_affine::tiling::TileConfig::new(tiles), &sizes, &CompileOptions::default())
            .unwrap();
        let mut emul = seed_store(&p, &sizes, 42).unwrap();
        let stats = execute_compiled(&p, &compiled.mappings, &sizes, &mut emul, opts).unwrap();
        let mut reference = seed_store(&p, &sizes, 42).unwrap();
        run_program(&p, &sizes, &mut reference).unwrap();
        (emul, reference, stats)
    }

    #[test]
    fn matmul_agrees_with_interpreter() {
        let (emul, reference, stats) =
            emulate(MM, vec![4, 4, 4], &[("M", 9), ("N", 10), ("P", 7)], &plan_opts());
        assert!(compare_stores(&emul, &reference).is_empty());
        assert_eq!(stats.points, 9 * 10 * 7);
        assert_eq!(stats.launches, 1);
    }

    #[test]
    fn non_divisible_and_unit_tiles_agree() {
        for tiles in [vec![1, 1, 1], vec![3, 5, 2], vec![16, 16, 16]] {
            let (emul, reference, _) =
                emulate(MM, tiles.clone(), &[("M", 7), ("N", 11), ("P", 5)], &plan_opts());
            assert!(
                compare_stores(&emul, &reference).is_empty(),
                "tiles {tiles:?} disagree"
            );
        }
    }

    #[test]
    fn engines_agree_bitwise_with_identical_stats() {
        for tiles in [vec![4, 4, 4], vec![3, 5, 2], vec![1, 1, 1]] {
            let sizes: &[(&str, i64)] = &[("M", 9), ("N", 10), ("P", 7)];
            let plan_opts = plan_opts();
            let ref_opts = ExecOptions {
                engine: ExecEngine::Reference,
                ..ExecOptions::default()
            };
            let (plan_store, _, plan_stats) = emulate(MM, tiles.clone(), sizes, &plan_opts);
            let (ref_store, _, ref_stats) = emulate(MM, tiles.clone(), sizes, &ref_opts);
            assert!(
                compare_stores(&plan_store, &ref_store).is_empty(),
                "tiles {tiles:?}: engines disagree"
            );
            assert_eq!(plan_stats, ref_stats, "tiles {tiles:?}: stats diverge");
        }
    }

    #[test]
    fn auto_engine_is_correct_on_both_sides_of_the_threshold() {
        // 9·10·7 = 630 points resolves to the reference walker,
        // 13·13·13 = 2197 to the compiled plan; both must match the
        // interpreter bitwise, so `Auto` is purely a performance knob.
        for sizes in [
            &[("M", 9), ("N", 10), ("P", 7)][..],
            &[("M", 13), ("N", 13), ("P", 13)][..],
        ] {
            let points: i64 = sizes.iter().map(|&(_, n)| n).product();
            let (emul, reference, stats) =
                emulate(MM, vec![4, 4, 4], sizes, &ExecOptions::default());
            assert!(
                compare_stores(&emul, &reference).is_empty(),
                "{points} points: auto engine diverges from interpreter"
            );
            assert_eq!(stats.points as i64, points);
        }
    }

    #[test]
    fn time_loop_kernel_relaunches_per_step() {
        let (emul, reference, stats) = emulate(
            "kernel sweep(T, N) {
               for seq (t: T) for (i: N)
                 A[i] = A[i] + B[i];
             }",
            vec![1, 4],
            &[("T", 3), ("N", 10)],
            &plan_opts(),
        );
        assert!(compare_stores(&emul, &reference).is_empty());
        assert_eq!(stats.launches, 3);
        assert_eq!(stats.points, 30);
    }

    #[test]
    fn skipping_the_load_barrier_breaks_staged_kernels() {
        // The mapping stages A (matmul's shared-memory candidate). With
        // the barrier honored the oracle agrees; with the load barrier
        // skipped, threads read elements other threads have not staged
        // yet, so results MUST diverge — proving the emulator actually
        // models the barrier phases rather than bypassing the buffers.
        let faithful = plan_opts();
        let skip = ExecOptions {
            barrier_fidelity: BarrierFidelity::SkipLoadBarrier,
            ..plan_opts()
        };
        let sizes: &[(&str, i64)] = &[("M", 8), ("N", 8), ("P", 8)];
        let (emul, reference, stats) = emulate(MM, vec![4, 4, 4], sizes, &faithful);
        assert!(stats.staged_elems > 0, "A must be staged for this test");
        assert!(compare_stores(&emul, &reference).is_empty());
        let (emul, reference, _) = emulate(MM, vec![4, 4, 4], sizes, &skip);
        assert!(
            !compare_stores(&emul, &reference).is_empty(),
            "reordering __syncthreads() phases must be observable"
        );
    }

    #[test]
    fn batched_execution_matches_sequential_bitwise_with_identical_stats() {
        let p = parse_program(MM).unwrap();
        let sizes = ProblemSizes::new([("M", 9), ("N", 10), ("P", 7)]);
        let tile_sets = [
            vec![4, 4, 4],
            vec![3, 5, 2],
            vec![1, 1, 1],
            vec![16, 16, 16],
            vec![4, 4, 4], // duplicate config: exercises plan-cache hits
        ];
        let configs: Vec<Vec<GpuMapping>> = tile_sets
            .iter()
            .map(|tiles| {
                crate::Ppcg::new(GpuArch::ga100())
                    .compile(
                        &p,
                        &eatss_affine::tiling::TileConfig::new(tiles.clone()),
                        &sizes,
                        &CompileOptions::default(),
                    )
                    .unwrap()
                    .mappings
            })
            .collect();
        for opts in [plan_opts(), ExecOptions::default()] {
            let mut batched: Vec<Store> = configs
                .iter()
                .map(|_| seed_store(&p, &sizes, 42).unwrap())
                .collect();
            let results = execute_compiled_batch(&p, &configs, &sizes, &mut batched, &opts);
            for ((mappings, store), result) in configs.iter().zip(&batched).zip(results) {
                let mut solo = seed_store(&p, &sizes, 42).unwrap();
                let solo_stats =
                    execute_compiled(&p, mappings, &sizes, &mut solo, &opts).unwrap();
                assert!(
                    compare_stores(store, &solo).is_empty(),
                    "batched run diverges from sequential"
                );
                assert_eq!(result.unwrap(), solo_stats, "stats diverge");
            }
        }
    }

    #[test]
    fn zero_trip_is_a_noop() {
        let p = parse_program(MM).unwrap();
        let sizes = ProblemSizes::new([("M", 4), ("N", 4), ("P", 4)]);
        let compiled = crate::Ppcg::new(GpuArch::ga100())
            .compile(
                &p,
                &eatss_affine::tiling::TileConfig::new(vec![2, 2, 2]),
                &sizes,
                &CompileOptions::default(),
            )
            .unwrap();
        let zero = ProblemSizes::new([("M", 0), ("N", 4), ("P", 4)]);
        let mut store = Store::new();
        let stats = execute_compiled(&p, &compiled.mappings, &zero, &mut store, &ExecOptions::default())
            .unwrap();
        assert_eq!(stats.points, 0);
        assert_eq!(stats.blocks, 0);
    }
}
