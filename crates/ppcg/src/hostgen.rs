//! Host-side CUDA code generation: allocations, transfers, launches and
//! teardown for a compiled program — making the emitted source a complete
//! translation unit (what `ppcg --target=cuda` produces around its
//! kernels).

use crate::mapping::GpuMapping;
use eatss_affine::ir::Extent;
use eatss_affine::{ProblemSizes, Program};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Emits a `main` function that allocates every array, copies it to the
/// device, launches each kernel (looping over time steps where present)
/// and copies results back.
///
/// Array extents are derived from the references: each subscript's extent
/// is the maximum trip count of the dimensions it uses (halo offsets are
/// padded by one tile's worth to stay conservative).
pub fn emit_host(
    program: &Program,
    mappings: &[GpuMapping],
    sizes: &ProblemSizes,
) -> String {
    let mut out = String::new();
    let arrays = array_extents(program, sizes);
    let _ = writeln!(out, "int main(void) {{");
    // --- allocations -----------------------------------------------------
    for (name, extents) in &arrays {
        let count: i64 = extents.iter().product();
        let _ = writeln!(
            out,
            "  double *{name}_dev; cudaMalloc(&{name}_dev, {count}UL * sizeof(double)); \
             // {dims}",
            dims = extents
                .iter()
                .map(|e| format!("[{e}]"))
                .collect::<Vec<_>>()
                .join("")
        );
    }
    // --- launches ---------------------------------------------------------
    for (kernel, mapping) in program.kernels.iter().zip(mappings) {
        let grid = dim3(&mapping.grid_extents);
        let block = dim3(&mapping.thread_extents);
        let scalar = |name: &str| {
            kernel
                .unique_refs()
                .iter()
                .any(|r| r.array == name && r.subscripts.is_empty())
        };
        let mut args: Vec<String> = kernel
            .array_names()
            .iter()
            .map(|a| {
                if scalar(a) {
                    format!("1.0 /* {a} */") // scalars are host values
                } else {
                    format!("{a}_dev")
                }
            })
            .collect();
        for d in &kernel.dims {
            if let Extent::Param(p) = &d.extent {
                let v = sizes.get(p).unwrap_or(0);
                let arg = format!("{v} /* {p} */");
                if !args.contains(&arg) {
                    args.push(arg);
                }
            }
        }
        // Time (explicit-serial) dims become host loops, one per dim, with
        // the iterator passed down so the kernel sees the current step.
        let names = kernel.dim_names();
        let time_dims: Vec<usize> = (0..kernel.depth())
            .filter(|&d| kernel.dims[d].explicit_serial)
            .collect();
        for &d in &time_dims {
            args.push(format!("t{}", names[d]));
        }
        let mut indent = String::from("  ");
        for &d in &time_dims {
            let trip = kernel.trip_count(d, sizes).unwrap_or(1);
            let _ = writeln!(
                out,
                "{indent}for (long t{n} = 0; t{n} < {trip}; t{n}++) {{",
                n = names[d]
            );
            indent.push_str("  ");
        }
        let _ = writeln!(
            out,
            "{indent}{}_kernel<<<dim3({grid}), dim3({block})>>>({});",
            kernel.name,
            args.join(", ")
        );
        for _ in &time_dims {
            indent.truncate(indent.len() - 2);
            let _ = writeln!(out, "{indent}}}");
        }
    }
    let _ = writeln!(out, "  cudaDeviceSynchronize();");
    for name in arrays.keys() {
        let _ = writeln!(out, "  cudaFree({name}_dev);");
    }
    let _ = writeln!(out, "  return 0;");
    let _ = writeln!(out, "}}");
    out
}

fn dim3(extents: &[i64]) -> String {
    let mut v: Vec<String> = extents.iter().map(|e| e.to_string()).collect();
    while v.len() < 3 {
        v.push("1".into());
    }
    v.truncate(3);
    v.join(", ")
}

/// Per-array extents across the whole program: each subscript position's
/// extent is the max trip count of the dims it uses (plus the constant
/// offset span for halos), maximized over all references.
fn array_extents(program: &Program, sizes: &ProblemSizes) -> BTreeMap<String, Vec<i64>> {
    let mut arrays: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for kernel in &program.kernels {
        let trip = |d: usize| kernel.trip_count(d, sizes).unwrap_or(1);
        for stmt in &kernel.stmts {
            for r in std::iter::once(&stmt.write).chain(stmt.reads.iter()) {
                if r.subscripts.is_empty() {
                    continue; // scalars are kernel parameters, not arrays
                }
                let extents: Vec<i64> = r
                    .subscripts
                    .iter()
                    .map(|s| {
                        let span: i64 = s
                            .terms()
                            .iter()
                            .map(|&(d, c)| c.abs() * trip(d))
                            .sum();
                        (span + s.offset().abs()).max(1)
                    })
                    .collect();
                let entry = arrays.entry(r.array.clone()).or_insert_with(|| {
                    vec![1; extents.len()]
                });
                for (e, n) in entry.iter_mut().zip(&extents) {
                    *e = (*e).max(*n);
                }
            }
        }
    }
    arrays
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{CompileOptions, GpuMapping};
    use eatss_affine::parser::parse_program;
    use eatss_affine::tiling::TileConfig;
    use eatss_gpusim::GpuArch;

    fn host_for(src: &str, tiles: Vec<i64>, sizes: &[(&str, i64)]) -> String {
        let p = parse_program(src).unwrap();
        let sizes = ProblemSizes::new(sizes.iter().cloned());
        let mappings: Vec<GpuMapping> = p
            .kernels
            .iter()
            .map(|k| {
                GpuMapping::compute(
                    k,
                    &TileConfig::new(tiles[..k.depth()].to_vec()),
                    &GpuArch::ga100(),
                    &sizes,
                    &CompileOptions::default(),
                )
                .unwrap()
            })
            .collect();
        emit_host(&p, &mappings, &sizes)
    }

    const MM: &str = "kernel mm(M, N, P) {
        for (i: M) for (j: N) for (k: P)
          C[i][j] += A[i][k] * B[k][j];
      }";

    #[test]
    fn allocates_each_array_once_with_correct_extent() {
        let host = host_for(MM, vec![32, 32, 32], &[("M", 100), ("N", 200), ("P", 300)]);
        assert_eq!(host.matches("cudaMalloc").count(), 3);
        assert!(host.contains("C_dev, 20000UL * sizeof(double)"), "{host}");
        assert!(host.contains("A_dev, 30000UL * sizeof(double)"));
        assert!(host.contains("B_dev, 60000UL * sizeof(double)"));
        assert_eq!(host.matches("cudaFree").count(), 3);
    }

    #[test]
    fn launch_uses_mapping_geometry() {
        let host = host_for(MM, vec![32, 64, 16], &[("M", 128), ("N", 128), ("P", 128)]);
        // grid: x = ceil(128/64) = 2, y = ceil(128/32) = 4.
        assert!(host.contains("mm_kernel<<<dim3(2, 4, 1), dim3(32, 16, 1)>>>"), "{host}");
        assert!(host.contains("C_dev, A_dev, B_dev"));
        assert!(host.contains("128 /* M */"));
    }

    #[test]
    fn time_loops_wrap_the_launch() {
        let host = host_for(
            "kernel jac(T, N) {
               for seq (t: T) for (i: N) for (j: N)
                 B[i][j] = A[i][j-1] + A[i][j+1] + A[i][j];
             }",
            vec![1, 32, 32],
            &[("T", 50), ("N", 512)],
        );
        assert!(host.contains("for (long tt = 0; tt < 50; tt++)"), "{host}");
        assert!(host.contains("jac_kernel<<<"));
        // The current time step is passed to the kernel.
        assert!(host.contains(", tt);"), "{host}");
    }

    #[test]
    fn halo_offsets_pad_extents() {
        let host = host_for(
            "kernel s(N) { for (i: N) for (j: N) B[i][j] = A[i+1][j-1]; }",
            vec![32, 32],
            &[("N", 64)],
        );
        // A is indexed up to [N+1][N+1] conservatively: (64+1)*(64+1).
        assert!(host.contains("A_dev, 4225UL * sizeof(double)"), "{host}");
    }

    #[test]
    fn scalars_are_not_allocated() {
        let host = host_for(
            "kernel ax(N) { for (i: N) y[i] = alpha * x[i]; }",
            vec![32],
            &[("N", 100)],
        );
        assert!(!host.contains("alpha_dev"));
        assert_eq!(host.matches("cudaMalloc").count(), 2);
    }

    #[test]
    fn braces_balance() {
        let host = host_for(MM, vec![32, 32, 32], &[("M", 64), ("N", 64), ("P", 64)]);
        assert_eq!(host.matches('{').count(), host.matches('}').count());
        assert!(host.contains("cudaDeviceSynchronize"));
        assert!(host.trim_end().ends_with('}'));
    }
}
