//! Tile-space enumeration for the paper's exploratory studies.
//!
//! §II explores 3,375 variants of 2mm (15 candidate sizes per dimension,
//! cubed); §V-B uses 200–800 variants per benchmark depending on loop
//! dimensionality. [`TileSpace`] reproduces those grids.

use eatss_affine::tiling::TileConfig;

/// A Cartesian tile-size space: the same candidate list per dimension.
///
/// # Examples
///
/// ```
/// use eatss_ppcg::TileSpace;
///
/// // The paper's 2mm motivation study: 15^3 = 3,375 variants.
/// let space = TileSpace::motivation_grid(3);
/// assert_eq!(space.len(), 3375);
/// let first = space.iter().next().expect("non-empty space");
/// assert_eq!(first.sizes().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSpace {
    depth: usize,
    candidates: Vec<i64>,
}

/// The 15 candidate tile sizes of the §II exploration.
pub const MOTIVATION_CANDIDATES: [i64; 15] = [
    4, 8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 256, 320, 384, 512,
];

/// Smaller per-dimension candidate lists for higher-dimensional kernels,
/// keeping spaces in the paper's 200–800 range (§V-A).
pub const COMPACT_CANDIDATES: [i64; 6] = [4, 8, 16, 32, 64, 128];

impl TileSpace {
    /// Space over explicit candidates.
    pub fn new(depth: usize, candidates: Vec<i64>) -> Self {
        TileSpace { depth, candidates }
    }

    /// The §II motivation grid: 15 candidates per dimension.
    pub fn motivation_grid(depth: usize) -> Self {
        TileSpace::new(depth, MOTIVATION_CANDIDATES.to_vec())
    }

    /// The §V-B evaluation grid: size chosen by dimensionality so the
    /// space holds roughly 200–800 variants (15² = 225 for 2-D, 9³ = 729
    /// for 3-D, 5⁴ = 625 for 4-D, 4⁵ = 1024-capped for 5-D).
    pub fn evaluation_grid(depth: usize) -> Self {
        let candidates: Vec<i64> = match depth {
            0 | 1 => vec![4, 8, 16, 32, 64, 128, 256, 512, 1024],
            2 => MOTIVATION_CANDIDATES.to_vec(),
            3 => vec![4, 8, 16, 32, 64, 128, 256, 384, 512],
            4 => vec![4, 8, 16, 32, 64],
            _ => vec![4, 8, 16, 32],
        };
        TileSpace::new(depth, candidates)
    }

    /// Number of configurations in the space.
    pub fn len(&self) -> usize {
        self.candidates.len().pow(self.depth as u32)
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Candidate sizes per dimension.
    pub fn candidates(&self) -> &[i64] {
        &self.candidates
    }

    /// Iterates over every configuration in row-major (last dimension
    /// fastest) order.
    pub fn iter(&self) -> impl Iterator<Item = TileConfig> + '_ {
        let n = self.candidates.len();
        let total = self.len();
        let depth = self.depth;
        (0..total).map(move |mut idx| {
            let mut sizes = vec![0i64; depth];
            for d in (0..depth).rev() {
                sizes[d] = self.candidates[idx % n];
                idx /= n;
            }
            TileConfig::new(sizes)
        })
    }

    /// The `i`-th configuration (same order as [`TileSpace::iter`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn config(&self, index: usize) -> TileConfig {
        assert!(index < self.len(), "tile-space index out of range");
        self.iter().nth(index).expect("index checked against len")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_space_is_3375_for_depth_3() {
        let s = TileSpace::motivation_grid(3);
        assert_eq!(s.len(), 3375);
        assert_eq!(s.iter().count(), 3375);
    }

    #[test]
    fn evaluation_spaces_match_paper_scale() {
        // §V-A: "approximately 200-800 variants, depending on the maximum
        // loop dimensionality".
        for depth in 2..=5 {
            let n = TileSpace::evaluation_grid(depth).len();
            assert!((200..=1100).contains(&n), "depth {depth}: {n} variants");
        }
    }

    #[test]
    fn iter_is_exhaustive_and_unique() {
        let s = TileSpace::new(2, vec![1, 2, 3]);
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 9);
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
        assert_eq!(all[0].sizes(), &[1, 1]);
        assert_eq!(all[1].sizes(), &[1, 2]); // last dim fastest
        assert_eq!(all[8].sizes(), &[3, 3]);
    }

    #[test]
    fn config_indexing_matches_iter() {
        let s = TileSpace::new(3, vec![4, 8]);
        for (i, cfg) in s.iter().enumerate() {
            assert_eq!(s.config(i), cfg);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn config_out_of_range_panics() {
        TileSpace::new(1, vec![4]).config(1);
    }

    #[test]
    fn empty_depth_zero_space() {
        let s = TileSpace::new(0, vec![4, 8]);
        assert_eq!(s.len(), 1); // the empty configuration
        assert!(!s.is_empty());
        assert_eq!(s.iter().next().unwrap().sizes().len(), 0);
    }
}
