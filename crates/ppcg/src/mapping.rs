//! GPU mapping: from a tiled affine kernel to grid/block geometry,
//! shared-memory staging decisions, and a simulator execution spec.

use eatss_affine::analysis::{AccessAnalysis, MemoryKind, RefGroup};
use eatss_affine::ir::{ArrayRef, Kernel};
use eatss_affine::tiling::{div_ceil, TileConfig, TiledNest, TilingError};
use eatss_affine::ProblemSizes;
use eatss_gpusim::{GpuArch, KernelExecSpec, RefAccess};
use std::error::Error;
use std::fmt;

/// Compilation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program-wide tile configuration has fewer entries than a
    /// kernel's depth.
    NotEnoughTileSizes {
        /// Offending kernel.
        kernel: String,
        /// Its loop depth.
        depth: usize,
        /// Entries available.
        got: usize,
    },
    /// Invalid tile sizes.
    Tiling(TilingError),
    /// A problem-size parameter is unbound.
    UnboundParameter(String),
    /// The kernel has no parallel loop dimension to map to the GPU.
    NoParallelDim(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotEnoughTileSizes { kernel, depth, got } => write!(
                f,
                "kernel `{kernel}` has depth {depth} but only {got} tile sizes were given"
            ),
            CompileError::Tiling(e) => write!(f, "invalid tiling: {e}"),
            CompileError::UnboundParameter(p) => {
                write!(f, "problem-size parameter `{p}` is unbound")
            }
            CompileError::NoParallelDim(k) => {
                write!(f, "kernel `{k}` has no parallel loop dimension to map")
            }
        }
    }
}

impl Error for CompileError {}

impl From<TilingError> for CompileError {
    fn from(e: TilingError) -> Self {
        CompileError::Tiling(e)
    }
}

/// Compilation knobs — PPCG's command-line options the paper exercises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Element width: 8 (FP64, the paper's default) or 4 (FP32).
    pub elem_bytes: u8,
    /// Shared-memory budget per block, bytes (PPCG's
    /// `--max-shared-memory`). Zero disables staging entirely.
    pub shared_budget_bytes: u64,
    /// L1 carve-out left for hardware caching, bytes per SM.
    pub l1_avail_bytes: u64,
    /// PPCG's per-dimension thread-block caps (`--block-sizes`, default
    /// 32×16×4): tiles larger than the block give each thread several
    /// points, cyclically strided so coalescing is preserved.
    pub max_block_dims: [i64; 3],
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            elem_bytes: 8,
            shared_budget_bytes: 48 * 1024,
            l1_avail_bytes: 96 * 1024,
            max_block_dims: [32, 16, 4],
        }
    }
}

impl CompileOptions {
    /// Options from a shared-memory *split factor* (§IV-J): `split` of the
    /// combined L1+shared capacity goes to shared memory, the rest to L1.
    /// The per-block staging budget is additionally capped by the
    /// architecture's block limit.
    pub fn with_split(arch: &GpuArch, split: f64, elem_bytes: u8) -> Self {
        let split = split.clamp(0.0, 1.0);
        let shared_total = (arch.l1_shared_bytes as f64 * split) as u64;
        CompileOptions {
            elem_bytes,
            shared_budget_bytes: shared_total.min(arch.max_shared_per_block),
            l1_avail_bytes: arch.l1_shared_bytes - shared_total,
            max_block_dims: [32, 16, 4],
        }
    }
}

/// A mapped reference: the analysis group plus lowering results.
#[derive(Debug, Clone)]
pub struct MappedRef {
    /// The underlying analysis group.
    pub group: RefGroup,
    /// Whether it is staged through shared memory in the generated code.
    pub staged: bool,
    /// Per-step tile footprint in elements.
    pub tile_footprint_elems: i64,
}

/// The complete mapping of one kernel onto the GPU.
#[derive(Debug, Clone)]
pub struct GpuMapping {
    /// Kernel name.
    pub kernel_name: String,
    /// The applied tiling.
    pub tiles: TileConfig,
    /// Parallel/serial classification per loop dimension.
    pub parallel: Vec<bool>,
    /// Loop dims mapped to block/thread x, y, z (x first, up to 3).
    pub mapped_dims: Vec<usize>,
    /// Threads along x, y, z.
    pub thread_extents: Vec<i64>,
    /// Blocks along x, y, z.
    pub grid_extents: Vec<i64>,
    /// Point-loop multiplicity per thread.
    pub points_per_thread: i64,
    /// Serial tile steps per block (non-mapped, non-launch dims).
    pub serial_steps: i64,
    /// Kernel launches (product of explicit-serial time-loop extents —
    /// PPCG re-launches the grid per time step).
    pub launch_count: i64,
    /// References with staging decisions.
    pub refs: Vec<MappedRef>,
    /// Shared memory used per block, bytes.
    pub shared_bytes: u64,
    /// The lowered simulator spec for a single launch.
    spec: KernelExecSpec,
}

impl GpuMapping {
    /// Maps `kernel` tiled by `tiles` onto `arch` under `options`.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compute(
        kernel: &Kernel,
        tiles: &TileConfig,
        arch: &GpuArch,
        sizes: &ProblemSizes,
        options: &CompileOptions,
    ) -> Result<GpuMapping, CompileError> {
        let analysis = AccessAnalysis::analyze(kernel);
        let depth = kernel.depth();

        let trip = |d: usize| -> Result<i64, CompileError> {
            kernel
                .trip_count(d, sizes)
                .map_err(CompileError::UnboundParameter)
        };

        // PPCG quirk reproduced from the paper (§V-D, Fig. 10 note): "the
        // PPCG code generator ignores the tiling for the innermost loop
        // when depth > 3" — that dimension runs untiled.
        let mut tiles = tiles.clone();
        if depth > 3 && !kernel.dims[depth - 1].explicit_serial {
            let mut sz = tiles.sizes().to_vec();
            sz[depth - 1] = trip(depth - 1)?.max(1);
            tiles = TileConfig::new(sz);
        }
        let tiles = &tiles;
        let nest = TiledNest::new(kernel, tiles)?;
        let clipped = |d: usize| -> Result<i64, CompileError> {
            Ok(nest.tile(d).min(trip(d)?))
        };

        // --- choose mapped dimensions (x first) -------------------------
        let parallel = analysis.parallel.clone();
        let mut mapped_dims: Vec<usize> = Vec::new();
        let x_dim = match analysis.cma_dim.filter(|&d| parallel[d]) {
            Some(d) => d,
            None => parallel
                .iter()
                .rposition(|&p| p)
                .ok_or_else(|| CompileError::NoParallelDim(kernel.name.clone()))?,
        };
        mapped_dims.push(x_dim);
        // Remaining parallel dims, innermost first, up to 3 total.
        for d in (0..depth).rev() {
            if parallel[d] && d != x_dim && mapped_dims.len() < 3 {
                mapped_dims.push(d);
            }
        }

        // --- threads and grid -------------------------------------------
        let cap = arch.max_threads_per_block as i64;
        let mut thread_extents = Vec::with_capacity(mapped_dims.len());
        let mut used = 1i64;
        for (pos, &d) in mapped_dims.iter().enumerate() {
            let dim_cap = options.max_block_dims.get(pos).copied().unwrap_or(1);
            let t = clipped(d)?.min(dim_cap.max(1)).min((cap / used).max(1));
            thread_extents.push(t);
            used *= t;
        }
        let tile_points: i64 = mapped_dims
            .iter()
            .map(|&d| clipped(d))
            .try_fold(1i64, |acc, t| t.map(|t| acc.saturating_mul(t)))?;
        let threads_per_block: i64 = thread_extents.iter().product();
        let points_per_thread = div_ceil(tile_points, threads_per_block.max(1)).max(1);

        let mut grid_extents = Vec::with_capacity(mapped_dims.len());
        for &d in &mapped_dims {
            grid_extents.push(div_ceil(trip(d)?, nest.tile(d)));
        }
        let grid_blocks: i64 = grid_extents.iter().product();
        let grid_x_blocks = grid_extents.first().copied().unwrap_or(1);

        // --- serial steps and launches -----------------------------------
        let mut serial_steps = 1i64;
        let mut launch_count = 1i64;
        for d in 0..depth {
            if mapped_dims.contains(&d) {
                continue;
            }
            if kernel.dims[d].explicit_serial {
                // Time loops force global synchronization: PPCG re-launches
                // the grid each iteration rather than tiling them.
                launch_count = launch_count.saturating_mul(trip(d)?);
            } else {
                serial_steps = serial_steps.saturating_mul(div_ceil(trip(d)?, nest.tile(d)));
            }
        }

        // --- staging decision --------------------------------------------
        let elem = options.elem_bytes as i64;
        // The staging buffer must cover the whole box the group touches in
        // one serial step: the representative's footprint widened along the
        // fastest subscript by the members' constant-offset spread (merged
        // cache-line neighbours such as `A[i][j-1]`/`A[i][j+1]` read one
        // element to each side of the representative).
        let step_footprint = |g: &RefGroup| -> Result<i64, CompileError> {
            let spread = g.fastest_offsets.1 - g.fastest_offsets.0;
            footprint_widened(&g.representative, spread, |d| {
                if kernel.dims[d].explicit_serial {
                    Ok(1) // time dims do not widen a single launch's tile
                } else {
                    clipped(d)
                }
            })
        };
        // PPCG only promotes arrays that actually have reuse within the
        // block: a reference using every (non-time) dimension touches each
        // element once, and staging it would only add footprint and
        // barriers.
        let has_reuse = |g: &RefGroup| -> bool {
            (0..depth).any(|d| {
                !kernel.dims[d].explicit_serial && !g.representative.uses_dim(d)
            })
        };
        // Written groups are never staged: the generated code has no
        // write-back phase, so a `__shared__` copy of a written array would
        // silently fork it from global memory.
        let sh_candidates: Vec<usize> = analysis
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                g.memory == MemoryKind::SharedMem && !g.is_written && has_reuse(g)
            })
            .map(|(i, _)| i)
            .collect();
        let mut sh_bytes = 0i64;
        for &i in &sh_candidates {
            sh_bytes += step_footprint(&analysis.groups[i])? * elem;
        }
        let stage = !sh_candidates.is_empty()
            && options.shared_budget_bytes > 0
            && sh_bytes as u64 <= options.shared_budget_bytes;
        let shared_bytes = if stage { sh_bytes as u64 } else { 0 };

        // --- lower references ---------------------------------------------
        // Per-thread point multiplicity along each mapped dim: point loops
        // are unrolled, so a reference invariant along a mapped dim is
        // register-cached across that dim's points.
        let point_mult: Vec<i64> = mapped_dims
            .iter()
            .zip(&thread_extents)
            .map(|(&d, &t)| Ok(div_ceil(clipped(d)?, t.max(1)).max(1)))
            .collect::<Result<_, CompileError>>()?;
        // L1 residency requirement of a reference: a ref with block-level
        // temporal reuse (some non-time dim it does not use) must keep its
        // whole per-step tile resident to exploit that reuse. A streaming
        // ref (every dim used — stencil reads, copies, mvt's matrix) only
        // keeps the band currently swept by the threads (+halo) live, no
        // matter how large the tile is.
        let residency = |g: &RefGroup| -> Result<i64, CompileError> {
            if has_reuse(g) {
                return step_footprint(g);
            }
            footprint(&g.representative, |d| {
                if kernel.dims[d].explicit_serial {
                    Ok(1)
                } else if let Some(pos) = mapped_dims.iter().position(|&m| m == d) {
                    Ok(thread_extents[pos] + 2)
                } else {
                    Ok(2) // current + previous serial slice
                }
            })
        };
        let mut refs = Vec::with_capacity(analysis.groups.len());
        let mut sim_refs = Vec::with_capacity(analysis.groups.len());
        for g in &analysis.groups {
            // Dynamic accesses per block, with register-level reuse:
            //  * a mapped dim contributes its tile extent, divided by the
            //    per-thread multiplicity when the ref is invariant in it;
            //  * a used serial dim contributes its full extent;
            //  * an unused serial dim contributes one access per tile step
            //    (the value stays in a register across the point loop).
            let mut accesses = g.members as i64;
            for d in 0..depth {
                if kernel.dims[d].explicit_serial {
                    continue;
                }
                if let Some(pos) = mapped_dims.iter().position(|&m| m == d) {
                    accesses = accesses.saturating_mul(clipped(d)?);
                    if !g.representative.uses_dim(d) {
                        // Register reuse across unrolled points is limited
                        // by the compiler's unroll window.
                        accesses /= point_mult[pos].clamp(1, 4);
                    }
                } else if g.representative.uses_dim(d) {
                    accesses = accesses.saturating_mul(trip(d)?);
                } else {
                    accesses =
                        accesses.saturating_mul(div_ceil(trip(d)?, nest.tile(d)));
                }
            }
            let staged =
                stage && g.memory == MemoryKind::SharedMem && !g.is_written && has_reuse(g);
            let tile_fp = step_footprint(g)?;
            let resident_fp = if staged { tile_fp } else { residency(g)? };
            let block_fp = footprint(&g.representative, |d| {
                if kernel.dims[d].explicit_serial {
                    Ok(1)
                } else if mapped_dims.contains(&d) {
                    clipped(d)
                } else {
                    trip(d)
                }
            })?;
            let total_fp = footprint(&g.representative, |d| {
                if kernel.dims[d].explicit_serial {
                    Ok(1)
                } else {
                    trip(d)
                }
            })?;
            // Coalescing: a reference is warp-friendly unless it indexes
            // the thread-x dimension with a stride (x used, but not as the
            // stride-1 dimension). x-invariant references broadcast.
            let coalesced =
                !g.representative.uses_dim(x_dim) || g.stride1_dim == Some(x_dim);
            // Contiguity along the fastest array dimension over the block's
            // lifetime: serial tile loops sweep their whole extent, and the
            // x-adjacent blocks of a wave cover the rest of a row, so any
            // non-time dimension in the fastest subscript contributes its
            // full trip count. Short rows (small filters, small arrays)
            // still pay reduced DRAM burst efficiency.
            let contiguous_x = g
                .representative
                .fastest_subscript()
                .map(|s| {
                    s.terms()
                        .iter()
                        .map(|&(d, c)| {
                            let t = if kernel.dims[d].explicit_serial {
                                1
                            } else {
                                trip(d).unwrap_or(1)
                            };
                            c.abs().saturating_mul(t)
                        })
                        .sum::<i64>()
                        .max(1)
                })
                .unwrap_or(1);
            let varies_block_x = g.representative.uses_dim(x_dim);
            let varies_block_y = mapped_dims
                .get(1)
                .is_some_and(|&d| g.representative.uses_dim(d))
                || mapped_dims
                    .get(2)
                    .is_some_and(|&d| g.representative.uses_dim(d));

            sim_refs.push(RefAccess {
                name: g.array.clone(),
                staged_shared: staged,
                tile_footprint_elems: resident_fp,
                block_footprint_elems: block_fp,
                total_footprint_elems: total_fp,
                accesses_per_block: accesses,
                coalesced,
                contiguous_x_elems: contiguous_x,
                varies_block_x,
                varies_block_y,
                is_write: g.is_written,
            });
            refs.push(MappedRef {
                group: g.clone(),
                staged,
                tile_footprint_elems: tile_fp,
            });
        }

        let total_flops = kernel
            .total_flops(sizes)
            .map_err(CompileError::UnboundParameter)? as f64;
        let spec = KernelExecSpec {
            name: format!("{}{}", kernel.name, tiles),
            grid_blocks,
            grid_x_blocks,
            threads_per_block,
            points_per_thread,
            serial_steps_per_block: serial_steps,
            flops_total: total_flops / launch_count.max(1) as f64,
            elem_bytes: options.elem_bytes,
            shared_bytes_per_block: shared_bytes.min(u32::MAX as u64) as u32,
            l1_avail_bytes: options.l1_avail_bytes,
            num_refs: analysis.distinct_line_refs() as u32,
            refs: sim_refs,
        };

        Ok(GpuMapping {
            kernel_name: kernel.name.clone(),
            tiles: tiles.clone(),
            parallel,
            mapped_dims,
            thread_extents,
            grid_extents,
            points_per_thread,
            serial_steps,
            launch_count,
            refs,
            shared_bytes,
            spec,
        })
    }

    /// The lowered execution spec for a single kernel launch (time loops
    /// re-launch it [`GpuMapping::launch_count`] times).
    pub fn to_exec_spec(&self) -> KernelExecSpec {
        self.spec.clone()
    }

    /// The loop dimension mapped to thread/block x.
    pub fn x_dim(&self) -> usize {
        self.mapped_dims[0]
    }
}

/// Footprint of a reference as the product of per-subscript extents,
/// where each dimension contributes `extent(dim)` and multiple iterators
/// in one subscript add (e.g. `in[i+p]` spans `T_i + T_p − 1`).
fn footprint<E>(r: &ArrayRef, extent: E) -> Result<i64, CompileError>
where
    E: FnMut(usize) -> Result<i64, CompileError>,
{
    footprint_widened(r, 0, extent)
}

/// Like [`footprint`], but the fastest-varying subscript's span is widened
/// by `extra_last` elements — the offset spread of the other members of a
/// cache-line group (see `RefGroup::fastest_offsets`). Used for sizing
/// shared-memory staging buffers, where covering every member's access is
/// a correctness requirement, not a model estimate.
fn footprint_widened<E>(
    r: &ArrayRef,
    extra_last: i64,
    mut extent: E,
) -> Result<i64, CompileError>
where
    E: FnMut(usize) -> Result<i64, CompileError>,
{
    let mut total = 1i64;
    let last = r.subscripts.len().saturating_sub(1);
    for (i, s) in r.subscripts.iter().enumerate() {
        let mut span = 0i64;
        let mut parts = 0;
        for &(d, c) in s.terms() {
            span += c.abs().saturating_mul(extent(d)?);
            parts += 1;
        }
        let mut span = if parts == 0 {
            1
        } else {
            (span - (parts - 1)).max(1)
        };
        if i == last {
            span += extra_last;
        }
        total = total.saturating_mul(span);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::parser::parse_program;

    fn matmul() -> Kernel {
        parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        )
        .unwrap()
        .kernels
        .remove(0)
    }

    fn sizes(n: i64) -> ProblemSizes {
        ProblemSizes::new([("M", n), ("N", n), ("P", n)])
    }

    #[test]
    fn matmul_default_mapping() {
        let k = matmul();
        let m = GpuMapping::compute(
            &k,
            &TileConfig::ppcg_default(3),
            &GpuArch::ga100(),
            &sizes(2000),
            &CompileOptions::default(),
        )
        .unwrap();
        // x = j (CMA), y = i; the PPCG block cap is 32x16 so the 32x32
        // tile gives each thread two points along y.
        assert_eq!(m.mapped_dims, vec![1, 0]);
        assert_eq!(m.thread_extents, vec![32, 16]);
        assert_eq!(m.grid_extents, vec![63, 63]);
        assert_eq!(m.points_per_thread, 2);
        assert_eq!(m.serial_steps, 63); // ceil(2000/32)
        assert_eq!(m.launch_count, 1);
        // A[i][k] is staged (32*32*8 = 8 KiB <= 48 KiB budget).
        let a = m.refs.iter().find(|r| r.group.array == "A").unwrap();
        assert!(a.staged);
        assert_eq!(m.shared_bytes, 32 * 32 * 8);
        let spec = m.to_exec_spec();
        assert_eq!(spec.threads_per_block, 512);
        assert_eq!(spec.grid_blocks, 63 * 63);
        assert_eq!(spec.grid_x_blocks, 63);
    }

    #[test]
    fn virtual_cap_gives_point_multiplicity() {
        // EATSS's §IV-A solution: Ti=16, Tj=384, Tk=16 → 6144 tile points,
        // 1024 threads, 6 points per thread.
        let k = matmul();
        let m = GpuMapping::compute(
            &k,
            &TileConfig::new(vec![16, 384, 16]),
            &GpuArch::ga100(),
            &sizes(4000),
            &CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(m.thread_extents, vec![32, 16]); // PPCG block caps
        assert_eq!(m.points_per_thread, 12); // 6144 / 512
        let spec = m.to_exec_spec();
        assert_eq!(spec.threads_per_block, 512);
    }

    #[test]
    fn ref_lowering_matmul_footprints() {
        let k = matmul();
        let n = 2000;
        let m = GpuMapping::compute(
            &k,
            &TileConfig::new(vec![32, 64, 16]),
            &GpuArch::ga100(),
            &sizes(n),
            &CompileOptions::default(),
        )
        .unwrap();
        let spec = m.to_exec_spec();
        let c = spec.refs.iter().find(|r| r.name == "C").unwrap();
        assert_eq!(c.tile_footprint_elems, 32 * 64);
        assert_eq!(c.block_footprint_elems, 32 * 64);
        assert_eq!(c.total_footprint_elems, n * n);
        assert!(c.coalesced);
        assert!(c.is_write);
        assert!(c.varies_block_x && c.varies_block_y);
        let a = spec.refs.iter().find(|r| r.name == "A").unwrap();
        assert_eq!(a.tile_footprint_elems, 32 * 16);
        assert_eq!(a.block_footprint_elems, 32 * n);
        assert!(a.staged_shared);
        assert!(a.coalesced, "x-invariant references broadcast");
        assert!(!a.varies_block_x && a.varies_block_y);
        let b = spec.refs.iter().find(|r| r.name == "B").unwrap();
        assert_eq!(b.tile_footprint_elems, 16 * 64);
        assert_eq!(b.block_footprint_elems, n * 64);
        assert!(b.coalesced);
        assert!(b.varies_block_x && !b.varies_block_y);
        // A is invariant along the thread-x dimension (j), whose tile is
        // twice the 32-thread block width: two cyclic points per thread
        // register-cache the load.
        let per_block = 32 * 64 * n;
        assert_eq!(a.accesses_per_block, per_block / 2);
    }

    #[test]
    fn staging_respects_budget() {
        let k = matmul();
        // Budget below the A-tile footprint (32*32*8 = 8 KiB): no staging.
        let opts = CompileOptions {
            shared_budget_bytes: 4 * 1024,
            ..CompileOptions::default()
        };
        let m = GpuMapping::compute(
            &k,
            &TileConfig::ppcg_default(3),
            &GpuArch::ga100(),
            &sizes(2000),
            &opts,
        )
        .unwrap();
        assert_eq!(m.shared_bytes, 0);
        assert!(m.refs.iter().all(|r| !r.staged));
    }

    #[test]
    fn zero_budget_disables_staging() {
        let k = matmul();
        let opts = CompileOptions {
            shared_budget_bytes: 0,
            ..CompileOptions::default()
        };
        let m = GpuMapping::compute(
            &k,
            &TileConfig::ppcg_default(3),
            &GpuArch::ga100(),
            &sizes(2000),
            &opts,
        )
        .unwrap();
        assert_eq!(m.shared_bytes, 0);
    }

    #[test]
    fn time_loops_become_launches() {
        let p = parse_program(
            "kernel jac(T, N) {
               for seq (t: T) for (i: N) for (j: N)
                 B[i][j] = A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j];
             }",
        )
        .unwrap();
        let sizes = ProblemSizes::new([("T", 500), ("N", 1300)]);
        let m = GpuMapping::compute(
            &p.kernels[0],
            &TileConfig::ppcg_default(3),
            &GpuArch::ga100(),
            &sizes,
            &CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(m.launch_count, 500);
        assert_eq!(m.serial_steps, 1);
        // FLOPs are per launch.
        let per_launch = m.to_exec_spec().flops_total;
        let total = p.kernels[0].total_flops(&sizes).unwrap() as f64;
        assert!((per_launch * 500.0 - total).abs() / total < 1e-9);
    }

    #[test]
    fn stencil_halo_footprint_adds_extents() {
        let p = parse_program(
            "kernel conv(H, W, R, S) {
               for (i: H) for (j: W) for (p: R) for (q: S)
                 out[i][j] += in[i+p][j+q] * w[p][q];
             }",
        )
        .unwrap();
        let sizes = ProblemSizes::new([("H", 224), ("W", 224), ("R", 11), ("S", 11)]);
        let m = GpuMapping::compute(
            &p.kernels[0],
            &TileConfig::new(vec![32, 32, 11, 11]),
            &GpuArch::ga100(),
            &sizes,
            &CompileOptions::default(),
        )
        .unwrap();
        let spec = m.to_exec_spec();
        let in_ref = spec.refs.iter().find(|r| r.name == "in").unwrap();
        // `in` uses every dimension → streaming: its live set is the
        // thread band plus halo, (ty+2 + 2 − 1) × (tx+2 + 2 − 1) with the
        // 32×16 block caps, not the whole (32+11−1)² tile.
        assert_eq!(in_ref.tile_footprint_elems, 19 * 35);
        let w = spec.refs.iter().find(|r| r.name == "w").unwrap();
        assert!(w.staged_shared, "w is not CMA-capable and fits shared");
    }

    #[test]
    fn written_groups_are_never_staged() {
        // Regression (oracle finding): A is written but not an accumulation
        // target, has reuse along k, and is not CMA-capable — the old
        // staging filter put it in shared memory even though the generated
        // code never writes staged tiles back to global memory.
        let p = parse_program(
            "kernel wb(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 A[j][2*i] = A[j][2*i] + B[i][j][k];
             }",
        )
        .unwrap();
        let m = GpuMapping::compute(
            &p.kernels[0],
            &TileConfig::new(vec![4, 4, 4]),
            &GpuArch::ga100(),
            &sizes(64),
            &CompileOptions::default(),
        )
        .unwrap();
        let a = m.refs.iter().find(|r| r.group.array == "A").unwrap();
        assert!(a.group.is_written);
        assert!(!a.staged, "written groups must stay in global memory");
        assert_eq!(m.shared_bytes, 0);
    }

    #[test]
    fn staging_box_covers_member_offset_spread() {
        // Regression (oracle finding): x[k-1] and x[k+1] share one group
        // whose staged box must span tile + (max_off - min_off) elements,
        // not just the representative's tile elements.
        let p = parse_program(
            "kernel sm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += w[k] * (x[k-1] + x[k+1]);
             }",
        )
        .unwrap();
        let m = GpuMapping::compute(
            &p.kernels[0],
            &TileConfig::new(vec![8, 8, 8]),
            &GpuArch::ga100(),
            &sizes(64),
            &CompileOptions::default(),
        )
        .unwrap();
        let x = m.refs.iter().find(|r| r.group.array == "x").unwrap();
        assert!(x.staged);
        assert_eq!(x.group.fastest_offsets, (-1, 1));
        assert_eq!(x.tile_footprint_elems, 10, "8-wide tile + spread of 2");
        let w = m.refs.iter().find(|r| r.group.array == "w").unwrap();
        assert!(w.staged);
        assert_eq!(w.tile_footprint_elems, 8);
        assert_eq!(m.shared_bytes, (10 + 8) * 8);
    }

    #[test]
    fn fully_serial_kernel_is_rejected() {
        let p = parse_program("kernel s(N) { for (i: N) A[i] = A[i-1] + 1; }").unwrap();
        let e = GpuMapping::compute(
            &p.kernels[0],
            &TileConfig::ppcg_default(1),
            &GpuArch::ga100(),
            &ProblemSizes::new([("N", 100)]),
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, CompileError::NoParallelDim(_)));
    }

    #[test]
    fn unbound_parameter_is_reported() {
        let k = matmul();
        let e = GpuMapping::compute(
            &k,
            &TileConfig::ppcg_default(3),
            &GpuArch::ga100(),
            &ProblemSizes::new([("M", 100)]),
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, CompileError::UnboundParameter(p) if p == "N" || p == "P"));
    }

    #[test]
    fn options_with_split() {
        let arch = GpuArch::ga100();
        let o = CompileOptions::with_split(&arch, 0.5, 8);
        assert_eq!(o.l1_avail_bytes, 96 * 1024);
        assert_eq!(o.shared_budget_bytes, 48 * 1024); // capped by block limit
        let o = CompileOptions::with_split(&arch, 0.0, 4);
        assert_eq!(o.shared_budget_bytes, 0);
        assert_eq!(o.l1_avail_bytes, 192 * 1024);
    }

    #[test]
    fn small_problem_clips_tiles() {
        let k = matmul();
        let m = GpuMapping::compute(
            &k,
            &TileConfig::new(vec![1024, 1024, 1024]),
            &GpuArch::ga100(),
            &sizes(100),
            &CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(m.grid_extents, vec![1, 1]);
        // 100×100 points, ≤1024 threads.
        assert!(m.to_exec_spec().threads_per_block <= 1024);
        assert!(m.points_per_thread >= 9);
    }
}
