//! Differential execution oracle: the emulated GPU execution of a
//! compiled program must agree element-wise (bitwise, see [`crate::exec`])
//! with the affine interpreter's untiled lexicographic execution.
//!
//! The oracle is the end-to-end semantic check of the whole pipeline:
//! solve → map → codegen semantics → emulate, compared against the
//! reference interpreter on the same deterministically seeded inputs.

use crate::exec::{execute_compiled, ExecError, ExecOptions};
use crate::mapping::{CompileError, CompileOptions};
use crate::Ppcg;
use eatss_affine::interp::{compare_stores, run_program, InterpError, Store, StoreMismatch};
use eatss_affine::interp::Array;
use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Oracle knobs.
#[derive(Debug, Clone, Default)]
pub struct OracleOptions {
    /// Compile options forwarded to the PPCG stand-in.
    pub compile: CompileOptions,
    /// Emulator options (barrier fidelity).
    pub exec: ExecOptions,
    /// Mismatches kept in a failure report (the total is still counted).
    pub max_mismatches: usize,
}

impl OracleOptions {
    /// Default report size when `max_mismatches` is zero.
    const DEFAULT_MAX_MISMATCHES: usize = 8;
}

/// What a successful verification covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleReport {
    /// Kernels executed.
    pub kernels: u64,
    /// Grid launches emulated.
    pub launches: u64,
    /// Blocks emulated.
    pub blocks: u64,
    /// Iteration points executed (per execution; the interpreter runs the
    /// same number).
    pub points: u64,
    /// Barriers honored.
    pub barriers: u64,
    /// Elements staged through emulated shared memory.
    pub staged_elems: u64,
    /// Arrays compared element-wise.
    pub arrays_compared: u64,
}

/// Verification failures.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// The PPCG stand-in rejected the configuration.
    Compile(CompileError),
    /// The emulator faulted (staging/guard bug).
    Exec(ExecError),
    /// The reference interpreter failed (unbound size).
    Interp(InterpError),
    /// Emulated and reference results disagree.
    Mismatch {
        /// Tile configuration under test, for the failure message.
        tiles: String,
        /// First few disagreements.
        mismatches: Vec<StoreMismatch>,
        /// Total number of disagreeing elements.
        total: usize,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Compile(e) => write!(f, "compile: {e}"),
            OracleError::Exec(e) => write!(f, "emulation: {e}"),
            OracleError::Interp(e) => write!(f, "interpreter: {e}"),
            OracleError::Mismatch {
                tiles,
                mismatches,
                total,
            } => {
                writeln!(f, "tiles {tiles}: {total} element(s) disagree:")?;
                for m in mismatches {
                    writeln!(f, "  {m}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for OracleError {}

impl From<CompileError> for OracleError {
    fn from(e: CompileError) -> Self {
        OracleError::Compile(e)
    }
}

impl From<ExecError> for OracleError {
    fn from(e: ExecError) -> Self {
        OracleError::Exec(e)
    }
}

impl From<InterpError> for OracleError {
    fn from(e: InterpError) -> Self {
        OracleError::Interp(e)
    }
}

/// Allocates every array the program touches and fills it with small
/// deterministic integers in `[-3, 3]` — exactly representable, so any
/// divergence between executions is a real ordering/coverage bug, never
/// floating-point noise. The pattern depends on the array name, the
/// element index, and `seed`.
///
/// # Errors
///
/// Returns [`InterpError::UnboundParameter`] on unbound sizes.
pub fn seed_store(
    program: &Program,
    sizes: &ProblemSizes,
    seed: u64,
) -> Result<Store, InterpError> {
    let mut store = Store::new();
    store.allocate_for(program, sizes)?;
    let names: Vec<String> = store.arrays().map(|(n, _)| n.to_string()).collect();
    let mut seeded = Store::new();
    for name in names {
        let extents = store.get(&name).expect("just listed").extents().to_vec();
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in name.bytes() {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        let base = h;
        let array = Array::from_fn(extents, |idx| {
            let mut h = base;
            for &i in idx {
                h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(i as u64);
                h ^= h >> 29;
            }
            let v = (h % 7) as i64 - 3;
            // Keep scalars (and everything else) away from an all-zero
            // pattern collapse: zero only when the hash says so.
            v as f64
        });
        seeded.insert(name, array);
    }
    Ok(seeded)
}

/// Runs one program × tile configuration through compile → emulate and
/// compares against the reference interpreter on identically seeded
/// stores.
///
/// # Errors
///
/// See [`OracleError`]; [`OracleError::Mismatch`] is the oracle firing.
pub fn verify(
    program: &Program,
    tiles: &TileConfig,
    arch: &GpuArch,
    sizes: &ProblemSizes,
    options: &OracleOptions,
    seed: u64,
) -> Result<OracleReport, OracleError> {
    let mut span = eatss_trace::span("oracle", "verify");
    if span.is_active() {
        span.arg("program", program.name.as_str());
        span.arg("tiles", tiles.to_string());
        span.arg("seed", seed);
    }
    let compiled = Ppcg::new(arch.clone()).compile(program, tiles, sizes, &options.compile)?;

    let mut emulated = seed_store(program, sizes, seed)?;
    let stats = execute_compiled(
        program,
        &compiled.mappings,
        sizes,
        &mut emulated,
        &options.exec,
    )?;

    let mut reference = seed_store(program, sizes, seed)?;
    run_program(program, sizes, &mut reference)?;

    let mismatches = compare_stores(&emulated, &reference);
    eatss_trace::counter_add("oracle.points", stats.points);
    eatss_trace::counter_add("oracle.configs", 1);
    if !mismatches.is_empty() {
        eatss_trace::counter_add("oracle.mismatches", mismatches.len() as u64);
        eatss_trace::error!(
            "oracle: {}: tiles {} disagree on {} element(s)",
            program.name,
            tiles,
            mismatches.len()
        );
        let keep = if options.max_mismatches == 0 {
            OracleOptions::DEFAULT_MAX_MISMATCHES
        } else {
            options.max_mismatches
        };
        let total = mismatches.len();
        let mut kept = mismatches;
        kept.truncate(keep);
        return Err(OracleError::Mismatch {
            tiles: tiles.to_string(),
            mismatches: kept,
            total,
        });
    }
    let arrays = reference.arrays().count() as u64;
    Ok(OracleReport {
        kernels: program.kernels.len() as u64,
        launches: stats.launches,
        blocks: stats.blocks,
        points: stats.points,
        barriers: stats.barriers,
        staged_elems: stats.staged_elems,
        arrays_compared: arrays,
    })
}

/// [`verify`] over many tile configurations at once, sharing the
/// expensive invariants across the batch: the reference interpretation
/// runs once (it does not depend on tiles), and the emulator executes
/// through [`execute_compiled_batch`], which compiles each distinct
/// per-kernel route signature once instead of once per configuration.
///
/// Returns one `Result` per configuration, in order, with exactly the
/// same verdicts, reports, and trace counters [`verify`] would produce
/// config-by-config.
pub fn verify_batch(
    program: &Program,
    configs: &[TileConfig],
    arch: &GpuArch,
    sizes: &ProblemSizes,
    options: &OracleOptions,
    seed: u64,
) -> Vec<Result<OracleReport, OracleError>> {
    let mut span = eatss_trace::span("oracle", "verify_batch");
    if span.is_active() {
        span.arg("program", program.name.as_str());
        span.arg("configs", configs.len() as u64);
        span.arg("seed", seed);
    }
    // Compile every config first; only mappable ones enter the batch.
    let ppcg = Ppcg::new(arch.clone());
    let compiled: Vec<Result<Vec<crate::GpuMapping>, OracleError>> = configs
        .iter()
        .map(|tiles| {
            ppcg.compile(program, tiles, sizes, &options.compile)
                .map(|c| c.mappings)
                .map_err(OracleError::from)
        })
        .collect();

    let mut stores = Vec::new();
    let mut mappable: Vec<usize> = Vec::new();
    let mut batch_configs: Vec<Vec<crate::GpuMapping>> = Vec::new();
    for (i, c) in compiled.iter().enumerate() {
        if let Ok(mappings) = c {
            match seed_store(program, sizes, seed) {
                Ok(store) => {
                    stores.push(store);
                    mappable.push(i);
                    batch_configs.push(mappings.clone());
                }
                Err(e) => return configs.iter().map(|_| Err(e.clone().into())).collect(),
            }
        }
    }

    let reference = {
        let mut store = match seed_store(program, sizes, seed) {
            Ok(store) => store,
            Err(e) => return configs.iter().map(|_| Err(e.clone().into())).collect(),
        };
        match run_program(program, sizes, &mut store) {
            Ok(()) => store,
            Err(e) => return configs.iter().map(|_| Err(e.clone().into())).collect(),
        }
    };

    let stats = crate::exec::execute_compiled_batch(
        program,
        &batch_configs,
        sizes,
        &mut stores,
        &options.exec,
    );

    let mut results: Vec<Result<OracleReport, OracleError>> = compiled
        .into_iter()
        .map(|c| c.map(|_| OracleReport::default()))
        .collect();
    let arrays = reference.arrays().count() as u64;
    for ((&i, store), stat) in mappable.iter().zip(&stores).zip(stats) {
        let tiles = &configs[i];
        results[i] = match stat {
            Err(e) => Err(e.into()),
            Ok(stats) => {
                let mismatches = compare_stores(store, &reference);
                eatss_trace::counter_add("oracle.points", stats.points);
                eatss_trace::counter_add("oracle.configs", 1);
                if mismatches.is_empty() {
                    Ok(OracleReport {
                        kernels: program.kernels.len() as u64,
                        launches: stats.launches,
                        blocks: stats.blocks,
                        points: stats.points,
                        barriers: stats.barriers,
                        staged_elems: stats.staged_elems,
                        arrays_compared: arrays,
                    })
                } else {
                    eatss_trace::counter_add("oracle.mismatches", mismatches.len() as u64);
                    eatss_trace::error!(
                        "oracle: {}: tiles {} disagree on {} element(s)",
                        program.name,
                        tiles,
                        mismatches.len()
                    );
                    let keep = if options.max_mismatches == 0 {
                        OracleOptions::DEFAULT_MAX_MISMATCHES
                    } else {
                        options.max_mismatches
                    };
                    let total = mismatches.len();
                    let mut kept = mismatches;
                    kept.truncate(keep);
                    Err(OracleError::Mismatch {
                        tiles: tiles.to_string(),
                        mismatches: kept,
                        total,
                    })
                }
            }
        };
    }
    results
}

/// Shrinks problem sizes so exhaustive interpretation stays fast: spatial
/// parameters are capped at `space_cap` and explicit-serial (time-loop)
/// parameters at `time_cap`.
pub fn verify_sizes(
    program: &Program,
    sizes: &ProblemSizes,
    space_cap: i64,
    time_cap: i64,
) -> ProblemSizes {
    let mut time_params: Vec<&str> = Vec::new();
    for kernel in &program.kernels {
        for dim in &kernel.dims {
            if let (true, eatss_affine::ir::Extent::Param(p)) = (dim.explicit_serial, &dim.extent)
            {
                time_params.push(p.as_str());
            }
        }
    }
    let mut shrunk = ProblemSizes::default();
    for (name, v) in sizes.iter() {
        let cap = if time_params.contains(&name) {
            time_cap
        } else {
            space_cap
        };
        shrunk.set(name, v.min(cap));
    }
    shrunk
}

/// Draws a random tile configuration of the given depth from a pool
/// biased toward the places guard bugs live: non-divisible boundaries,
/// single-element tiles, tiles crossing the trip count, and primes.
pub fn sample_tile_config<R: Rng>(rng: &mut R, trips: &[i64]) -> TileConfig {
    let mut sizes = Vec::with_capacity(trips.len());
    for &trip in trips {
        let trip = trip.max(1);
        let mut pool = vec![1, 2, 3, 5, 7, 8, 13, 16, 31, 32, 33, 64];
        pool.push((trip - 1).max(1));
        pool.push(trip);
        pool.push(trip + 1);
        let pick = pool[rng.gen_range(0..pool.len())];
        sizes.push(pick.max(1));
    }
    TileConfig::new(sizes)
}

/// Convenience: a fresh deterministic RNG for a sweep seed.
pub fn sweep_rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}
