//! A PPCG stand-in: tiling-driven GPU mapping and CUDA code generation
//! for affine programs.
//!
//! The EATSS paper uses the *Polyhedral Parallel Code Generator* \[24\] in
//! three roles, all reproduced here:
//!
//! 1. **baseline tiling** — the `32^d` default configuration
//!    ([`eatss_affine::tiling::TileConfig::ppcg_default`]) and exhaustive
//!    tile-space enumeration for the exploratory studies ([`space`]);
//! 2. **GPU mapping** ([`mapping`]) — assigning parallel tile dimensions
//!    to the grid/block, capping threads at `T_P_B` with point-loop
//!    multiplicity, deciding shared-memory staging under a budget, and
//!    lowering the result to an [`eatss_gpusim::KernelExecSpec`];
//! 3. **code generation** ([`codegen`]) — emitting the tiled CUDA-C text
//!    (tile loops, `min` guards, `__shared__` staging, `__syncthreads`).
//!
//! # Examples
//!
//! ```
//! use eatss_affine::{parser::parse_program, tiling::TileConfig, ProblemSizes};
//! use eatss_gpusim::GpuArch;
//! use eatss_ppcg::{CompileOptions, Ppcg};
//!
//! let program = parse_program(
//!     "kernel mm(M, N, P) {
//!        for (i: M) for (j: N) for (k: P)
//!          C[i][j] += A[i][k] * B[k][j];
//!      }")?;
//! let ppcg = Ppcg::new(GpuArch::ga100());
//! let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
//! let compiled = ppcg.compile(
//!     &program,
//!     &TileConfig::ppcg_default(3),
//!     &sizes,
//!     &CompileOptions::default(),
//! )?;
//! assert_eq!(compiled.specs.len(), 1);
//! assert!(compiled.cuda_source.contains("__global__"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod exec;
pub mod hostgen;
pub mod mapping;
pub mod oracle;
pub mod space;

pub use exec::{
    execute_compiled, execute_compiled_batch, execute_mapped_kernel, BarrierFidelity, ExecEngine,
    ExecError, ExecOptions, ExecStats, AUTO_PLAN_THRESHOLD_EMULATOR_POINTS,
    AUTO_PLAN_THRESHOLD_POINTS,
};
pub use mapping::{CompileError, CompileOptions, GpuMapping};
pub use oracle::{
    seed_store, verify, verify_batch, verify_sizes, OracleError, OracleOptions, OracleReport,
};
pub use space::TileSpace;

use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::{GpuArch, KernelExecSpec};

/// The PPCG stand-in compiler.
#[derive(Debug, Clone)]
pub struct Ppcg {
    arch: GpuArch,
}

/// A compiled program: one simulator spec per kernel plus the generated
/// CUDA source.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// One execution spec per kernel, in program order.
    pub specs: Vec<KernelExecSpec>,
    /// One GPU mapping per kernel, in program order.
    pub mappings: Vec<GpuMapping>,
    /// Generated CUDA-C source for the whole program.
    pub cuda_source: String,
}

impl Ppcg {
    /// Creates a compiler targeting `arch`.
    pub fn new(arch: GpuArch) -> Self {
        Ppcg { arch }
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Compiles a program under a (program-wide) tile configuration.
    ///
    /// Kernels shallower than the configuration use its prefix, mirroring
    /// how the paper applies one tile tuple to multi-kernel programs such
    /// as 2mm.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the tiling is malformed, a problem
    /// size is unbound, or a kernel cannot be mapped.
    pub fn compile(
        &self,
        program: &Program,
        tiles: &TileConfig,
        sizes: &ProblemSizes,
        options: &CompileOptions,
    ) -> Result<CompiledProgram, CompileError> {
        let mut span = eatss_trace::span("ppcg", "compile");
        if span.is_active() {
            span.arg("program", program.name.as_str());
            span.arg("tiles", tiles.to_string());
            span.arg("kernels", program.kernels.len());
        }
        let mut specs = Vec::with_capacity(program.kernels.len());
        let mut mappings = Vec::with_capacity(program.kernels.len());
        let mut cuda = codegen::program_header(&program.name, tiles);
        for kernel in &program.kernels {
            if kernel.depth() > tiles.len() {
                return Err(CompileError::NotEnoughTileSizes {
                    kernel: kernel.name.clone(),
                    depth: kernel.depth(),
                    got: tiles.len(),
                });
            }
            let ktiles = tiles.truncated(kernel.depth());
            let mapping = {
                let mut stage = eatss_trace::span("ppcg", "map");
                if stage.is_active() {
                    stage.arg("kernel", kernel.name.as_str());
                }
                GpuMapping::compute(kernel, &ktiles, &self.arch, sizes, options)?
            };
            {
                let mut stage = eatss_trace::span("ppcg", "codegen");
                if stage.is_active() {
                    stage.arg("kernel", kernel.name.as_str());
                }
                cuda.push_str(&codegen::emit_kernel(kernel, &mapping));
            }
            specs.push(mapping.to_exec_spec());
            mappings.push(mapping);
        }
        {
            let _stage = eatss_trace::span("ppcg", "hostgen");
            cuda.push_str(&hostgen::emit_host(program, &mappings, sizes));
        }
        if span.is_active() {
            span.arg("cuda_bytes", cuda.len());
        }
        Ok(CompiledProgram {
            specs,
            mappings,
            cuda_source: cuda,
        })
    }
}
