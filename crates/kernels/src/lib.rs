//! The benchmark suite of the EATSS paper: a Polybench/C 3.2 subset plus
//! the three non-Polybench kernels (conv-2d, heat-3d, mttkrp), declared
//! in the `eatss-affine` dialect with the paper's dataset scheme
//! (STANDARD for the Xavier, EXTRALARGE for the GA100 — §V-A).
//!
//! # Examples
//!
//! ```
//! use eatss_kernels::{by_name, Dataset};
//!
//! let gemm = by_name("gemm").expect("gemm is in the registry");
//! let program = gemm.program()?;
//! assert_eq!(program.kernels.len(), 1);
//! let sizes = gemm.sizes(Dataset::ExtraLarge);
//! assert_eq!(sizes.get("NI"), Some(4000));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sources;

use eatss_affine::parser::{parse_named_program, ParseError};
use eatss_affine::{ProblemSizes, Program};
use std::fmt;

/// Computational class of a benchmark (the paper's "expected results"
/// taxonomy in §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Dense linear algebra with O(n) reuse and ≥ 2 parallel loops
    /// (BLAS3-like: gemm, 2mm, 3mm, covariance, correlation).
    Blas3,
    /// Low-dimensional kernels with O(1) reuse (atax, bicg, mvt, gemver).
    LowDim,
    /// Iterative stencils (jacobi-1d/2d, fdtd-2d, fdtd-apml).
    Stencil,
    /// High-dimensional (4-D+) non-Polybench kernels (conv-2d, heat-3d,
    /// mttkrp).
    HighDim,
}

impl fmt::Display for KernelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelClass::Blas3 => "BLAS3",
            KernelClass::LowDim => "low-dim",
            KernelClass::Stencil => "stencil",
            KernelClass::HighDim => "high-dim",
        };
        f.write_str(s)
    }
}

/// Dataset size, per §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Polybench STANDARD — used on the Jetson AGX Xavier.
    Standard,
    /// Polybench EXTRALARGE — used on the GA100.
    ExtraLarge,
}

/// A benchmark: source text, class, and dataset bindings.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (e.g. `2mm`).
    pub name: &'static str,
    /// Computational class.
    pub class: KernelClass,
    /// Whether it belongs to Polybench (vs. the §V-D case study).
    pub polybench: bool,
    /// Source in the affine dialect.
    pub source: &'static str,
    standard: &'static [(&'static str, i64)],
    extra_large: &'static [(&'static str, i64)],
}

impl Benchmark {
    /// Parses the benchmark into an affine [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] — only possible if the embedded source is
    /// corrupted, which the test suite rules out.
    pub fn program(&self) -> Result<Program, ParseError> {
        parse_named_program(self.name, self.source)
    }

    /// Problem sizes for a dataset.
    pub fn sizes(&self, dataset: Dataset) -> ProblemSizes {
        let pairs = match dataset {
            Dataset::Standard => self.standard,
            Dataset::ExtraLarge => self.extra_large,
        };
        ProblemSizes::new(pairs.iter().map(|&(k, v)| (k, v)))
    }

    /// Problem sizes with every size parameter (not time steps) set to
    /// `n` — used by the §V-F input-size sensitivity study.
    pub fn sizes_uniform(&self, n: i64) -> ProblemSizes {
        let mut sizes = self.sizes(Dataset::ExtraLarge);
        let params: Vec<String> = sizes
            .iter()
            .map(|(k, _)| k.to_owned())
            .filter(|k| k != "TSTEPS")
            .collect();
        for p in params {
            sizes.set(p, n);
        }
        sizes
    }
}

macro_rules! benchmarks {
    ($( { $name:literal, $class:ident, $poly:literal, $src:ident,
          std: [$(($sk:literal, $sv:literal)),* $(,)?],
          xl:  [$(($xk:literal, $xv:literal)),* $(,)?] } ),* $(,)?) => {
        /// All benchmarks of the evaluation, Polybench first.
        pub fn all() -> Vec<Benchmark> {
            vec![$(
                Benchmark {
                    name: $name,
                    class: KernelClass::$class,
                    polybench: $poly,
                    source: sources::$src,
                    standard: &[$(($sk, $sv)),*],
                    extra_large: &[$(($xk, $xv)),*],
                },
            )*]
        }
    };
}

benchmarks![
    { "gemm", Blas3, true, GEMM,
      std: [("NI", 1024), ("NJ", 1024), ("NK", 1024)],
      xl:  [("NI", 4000), ("NJ", 4000), ("NK", 4000)] },
    { "2mm", Blas3, true, TWO_MM,
      std: [("NI", 1024), ("NJ", 1024), ("NK", 1024), ("NL", 1024)],
      xl:  [("NI", 4000), ("NJ", 4000), ("NK", 4000), ("NL", 4000)] },
    { "3mm", Blas3, true, THREE_MM,
      std: [("NI", 1024), ("NJ", 1024), ("NK", 1024), ("NL", 1024), ("NM", 1024)],
      xl:  [("NI", 4000), ("NJ", 4000), ("NK", 4000), ("NL", 4000), ("NM", 4000)] },
    { "covariance", Blas3, true, COVARIANCE,
      std: [("M", 1024), ("N", 1024)],
      xl:  [("M", 2600), ("N", 3000)] },
    { "correlation", Blas3, true, CORRELATION,
      std: [("M", 1024), ("N", 1024)],
      xl:  [("M", 2600), ("N", 3000)] },
    { "atax", LowDim, true, ATAX,
      std: [("NX", 4000), ("NY", 4000)],
      xl:  [("NX", 18000), ("NY", 18000)] },
    { "bicg", LowDim, true, BICG,
      std: [("NX", 4000), ("NY", 4000)],
      xl:  [("NX", 18000), ("NY", 18000)] },
    { "mvt", LowDim, true, MVT,
      std: [("N", 4000)],
      xl:  [("N", 16000)] },
    { "gemver", LowDim, true, GEMVER,
      std: [("N", 4000)],
      xl:  [("N", 13000)] },
    { "jacobi-1d", Stencil, true, JACOBI_1D,
      std: [("TSTEPS", 100), ("N", 100000)],
      xl:  [("TSTEPS", 500), ("N", 2000000)] },
    { "jacobi-2d", Stencil, true, JACOBI_2D,
      std: [("TSTEPS", 20), ("N", 1300)],
      xl:  [("TSTEPS", 100), ("N", 2800)] },
    { "fdtd-2d", Stencil, true, FDTD_2D,
      std: [("TSTEPS", 50), ("NX", 1000), ("NY", 1200)],
      xl:  [("TSTEPS", 100), ("NX", 2600), ("NY", 3000)] },
    { "fdtd-apml", Stencil, true, FDTD_APML,
      std: [("CZ", 64), ("CYM", 64), ("CXM", 64)],
      xl:  [("CZ", 256), ("CYM", 256), ("CXM", 256)] },
    { "syrk", Blas3, true, SYRK,
      std: [("N", 1024), ("M", 1024)],
      xl:  [("N", 4000), ("M", 4000)] },
    { "syr2k", Blas3, true, SYR2K,
      std: [("N", 1024), ("M", 1024)],
      xl:  [("N", 4000), ("M", 4000)] },
    { "gesummv", LowDim, true, GESUMMV,
      std: [("N", 4000)],
      xl:  [("N", 14000)] },
    { "doitgen", HighDim, true, DOITGEN,
      std: [("NR", 128), ("NQ", 128), ("NP", 128)],
      xl:  [("NR", 220), ("NQ", 220), ("NP", 270)] },
    { "b2mm", HighDim, false, B2MM,
      std: [("BA", 8), ("BB", 8), ("NI", 128), ("NJ", 128), ("NK", 128)],
      xl:  [("BA", 16), ("BB", 16), ("NI", 256), ("NJ", 256), ("NK", 256)] },
    { "conv-2d", HighDim, false, CONV_2D,
      std: [("H", 96), ("W", 96), ("R", 16), ("S", 16)],
      xl:  [("H", 192), ("W", 192), ("R", 32), ("S", 32)] },
    { "heat-3d", HighDim, false, HEAT_3D,
      std: [("TSTEPS", 20), ("N", 64)],
      xl:  [("TSTEPS", 100), ("N", 200)] },
    { "mttkrp", HighDim, false, MTTKRP,
      std: [("I", 128), ("J", 128), ("K", 128), ("L", 128)],
      xl:  [("I", 256), ("J", 256), ("K", 256), ("L", 256)] },
];

/// The Polybench subset of the suite.
pub fn polybench() -> Vec<Benchmark> {
    all().into_iter().filter(|b| b.polybench).collect()
}

/// All kernels outside Polybench (includes the §V-D case study plus
/// extra stress kernels such as the 5-D `b2mm`).
pub fn non_polybench() -> Vec<Benchmark> {
    all().into_iter().filter(|b| !b.polybench).collect()
}

/// Exactly the three non-Polybench kernels of the paper's §V-D case
/// study (conv-2d, heat-3d, mttkrp).
pub fn case_study() -> Vec<Benchmark> {
    ["conv-2d", "heat-3d", "mttkrp"]
        .into_iter()
        .map(|n| by_name(n).expect("case-study kernels are registered"))
        .collect()
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::analysis::parallel_dims;

    #[test]
    fn every_benchmark_parses() {
        for b in all() {
            let p = b.program().unwrap_or_else(|e| {
                panic!("benchmark `{}` failed to parse: {e}", b.name)
            });
            assert!(!p.kernels.is_empty(), "{}", b.name);
        }
    }

    #[test]
    fn registry_counts() {
        assert_eq!(polybench().len(), 17);
        assert_eq!(non_polybench().len(), 4);
        assert_eq!(case_study().len(), 3);
        assert_eq!(all().len(), 21);
        assert!(by_name("gemm").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_benchmark_has_bound_sizes() {
        for b in all() {
            let p = b.program().unwrap();
            for ds in [Dataset::Standard, Dataset::ExtraLarge] {
                let sizes = b.sizes(ds);
                let flops = p.total_flops(&sizes).unwrap_or_else(|missing| {
                    panic!("`{}` has unbound parameter {missing} for {ds:?}", b.name)
                });
                assert!(flops > 0, "{} has zero flops", b.name);
            }
        }
    }

    #[test]
    fn extralarge_is_larger_than_standard() {
        for b in all() {
            let p = b.program().unwrap();
            let std = p.total_flops(&b.sizes(Dataset::Standard)).unwrap();
            let xl = p.total_flops(&b.sizes(Dataset::ExtraLarge)).unwrap();
            assert!(xl > std, "{}: XL ({xl}) <= STANDARD ({std})", b.name);
        }
    }

    #[test]
    fn every_kernel_has_a_parallel_dim() {
        for b in all() {
            let p = b.program().unwrap();
            for k in &p.kernels {
                let par = parallel_dims(k);
                assert!(
                    par.iter().any(|&x| x),
                    "kernel `{}` of `{}` has no parallel dim: {par:?}",
                    k.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn blas3_kernels_have_two_parallel_dims() {
        for b in all().into_iter().filter(|b| b.class == KernelClass::Blas3) {
            let p = b.program().unwrap();
            // The main kernel (deepest) must have ≥ 2 parallel dims and a
            // serial reduction.
            let k = p
                .kernels
                .iter()
                .max_by_key(|k| k.depth())
                .expect("non-empty program");
            let par = parallel_dims(k);
            assert!(par.iter().filter(|&&x| x).count() >= 2, "{}", b.name);
            assert!(par.iter().any(|&x| !x), "{} lacks a reduction dim", b.name);
        }
    }

    #[test]
    fn stencils_have_serial_time_loop_or_multiple_kernels() {
        for b in all().into_iter().filter(|b| b.class == KernelClass::Stencil) {
            let p = b.program().unwrap();
            let time_looped = p
                .kernels
                .iter()
                .any(|k| k.dims.iter().any(|d| d.explicit_serial));
            assert!(
                time_looped || p.kernels.len() > 1,
                "{} is not an iterative stencil",
                b.name
            );
        }
    }

    #[test]
    fn highdim_kernels_are_4d() {
        for b in non_polybench() {
            let p = b.program().unwrap();
            let depth = p.max_depth();
            assert!(depth >= 4, "{} has depth {depth}, expected 4+", b.name);
        }
    }

    #[test]
    fn gemm_flop_count_matches_2n3() {
        let b = by_name("gemm").unwrap();
        let p = b.program().unwrap();
        let sizes = b.sizes(Dataset::Standard);
        // alpha*A*B accumulate: 3 flops per iteration in our counting.
        let n = 1024f64;
        let expected = 3.0 * n * n * n;
        assert_eq!(p.total_flops(&sizes).unwrap() as f64, expected);
    }

    #[test]
    fn two_mm_is_two_kernels_3mm_three() {
        assert_eq!(by_name("2mm").unwrap().program().unwrap().kernels.len(), 2);
        assert_eq!(by_name("3mm").unwrap().program().unwrap().kernels.len(), 3);
    }

    #[test]
    fn sizes_uniform_overrides_space_params_only() {
        let b = by_name("jacobi-2d").unwrap();
        let s = b.sizes_uniform(500);
        assert_eq!(s.get("N"), Some(500));
        assert_eq!(s.get("TSTEPS"), Some(100), "TSTEPS preserved");
    }

    #[test]
    fn class_display() {
        assert_eq!(KernelClass::Blas3.to_string(), "BLAS3");
        assert_eq!(KernelClass::HighDim.to_string(), "high-dim");
    }
}
