//! Benchmark kernels in the affine dialect.
//!
//! The sources mirror the Polybench/C 3.2 computations the paper
//! evaluates, restricted to their dominant (tiled) loop nests. Iterative
//! stencils carry their time loop as `for seq (t: TSTEPS)`; multi-nest
//! programs (2mm, fdtd-2d, ...) are expressed as one kernel per nest, the
//! way PPCG launches them.

/// gemm: `C += alpha·A·B` (the `beta·C` scaling is folded into the
/// accumulation — it is O(n²) and does not affect tiling).
pub const GEMM: &str = "
kernel gemm(NI, NJ, NK) {
  for (i: NI) for (j: NJ) for (k: NK)
    C[i][j] += alpha * A[i][k] * B[k][j];
}";

/// 2mm: two back-to-back matrix multiplications.
pub const TWO_MM: &str = "
kernel mm1(NI, NJ, NK) {
  for (i: NI) for (j: NJ) for (k: NK)
    tmp[i][j] += alpha * A[i][k] * B[k][j];
}
kernel mm2(NI, NL, NJ) {
  for (i: NI) for (j: NL) for (k: NJ)
    D[i][j] += tmp[i][k] * C[k][j];
}";

/// 3mm: three matrix multiplications, `G = (A·B)·(C·D)`.
pub const THREE_MM: &str = "
kernel mm1(NI, NJ, NK) {
  for (i: NI) for (j: NJ) for (k: NK)
    E[i][j] += A[i][k] * B[k][j];
}
kernel mm2(NJ, NL, NM) {
  for (i: NJ) for (j: NL) for (k: NM)
    F[i][j] += C[i][k] * D[k][j];
}
kernel mm3(NI, NL, NJ) {
  for (i: NI) for (j: NL) for (k: NJ)
    G[i][j] += E[i][k] * F[k][j];
}";

/// covariance: mean subtraction is O(n²); the dominant nest is the
/// symmetric rank-k-like update.
pub const COVARIANCE: &str = "
kernel mean(M, N) {
  for (j: M) for (i: N)
    mean[j] += data[i][j];
}
kernel cov(M, N) {
  for (i: M) for (j: M) for (k: N)
    cov[i][j] += data[k][i] * data[k][j];
}";

/// correlation: same dominant structure as covariance plus stddev
/// normalization.
pub const CORRELATION: &str = "
kernel stddev(M, N) {
  for (j: M) for (i: N)
    stddev[j] += data[i][j] * data[i][j];
}
kernel corr(M, N) {
  for (i: M) for (j: M) for (k: N)
    corr[i][j] += data[k][i] * data[k][j];
}";

/// atax: `y = Aᵀ(Ax)`.
pub const ATAX: &str = "
kernel atax1(NX, NY) {
  for (i: NX) for (j: NY)
    tmp[i] += A[i][j] * x[j];
}
kernel atax2(NX, NY) {
  for (i: NX) for (j: NY)
    y[j] += A[i][j] * tmp[i];
}";

/// bicg: the BiCG sub-kernels `s = rᵀA`, `q = Ap`.
pub const BICG: &str = "
kernel bicg1(NX, NY) {
  for (i: NX) for (j: NY)
    s[j] += r[i] * A[i][j];
}
kernel bicg2(NX, NY) {
  for (i: NX) for (j: NY)
    q[i] += A[i][j] * p[j];
}";

/// mvt: `x1 += A·y1`, `x2 += Aᵀ·y2`.
pub const MVT: &str = "
kernel mvt1(N) {
  for (i: N) for (j: N)
    x1[i] += A[i][j] * y1[j];
}
kernel mvt2(N) {
  for (i: N) for (j: N)
    x2[i] += A[j][i] * y2[j];
}";

/// gemver: rank-2 update followed by two matrix-vector products.
pub const GEMVER: &str = "
kernel rank2(N) {
  for (i: N) for (j: N)
    A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
}
kernel mvx(N) {
  for (i: N) for (j: N)
    x[i] += beta * A[j][i] * y[j];
}
kernel mvw(N) {
  for (i: N) for (j: N)
    w[i] += alpha * A[i][j] * x[j];
}";

/// jacobi-1d: 3-point stencil, ping-pong buffers.
pub const JACOBI_1D: &str = "
kernel jac1d_a(TSTEPS, N) {
  for seq (t: TSTEPS) for (i: N)
    B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
}
kernel jac1d_b(TSTEPS, N) {
  for seq (t: TSTEPS) for (i: N)
    A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1]);
}";

/// jacobi-2d: 5-point stencil, ping-pong buffers.
pub const JACOBI_2D: &str = "
kernel jac2d_a(TSTEPS, N) {
  for seq (t: TSTEPS) for (i: N) for (j: N)
    B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
}
kernel jac2d_b(TSTEPS, N) {
  for seq (t: TSTEPS) for (i: N) for (j: N)
    A[i][j] = 0.2 * (B[i][j] + B[i][j-1] + B[i][j+1] + B[i+1][j] + B[i-1][j]);
}";

/// fdtd-2d: the three field updates of each time step.
pub const FDTD_2D: &str = "
kernel fdtd_ey(TSTEPS, NX, NY) {
  for seq (t: TSTEPS) for (i: NX) for (j: NY)
    ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
}
kernel fdtd_ex(TSTEPS, NX, NY) {
  for seq (t: TSTEPS) for (i: NX) for (j: NY)
    ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
}
kernel fdtd_hz(TSTEPS, NX, NY) {
  for seq (t: TSTEPS) for (i: NX) for (j: NY)
    hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
}";

/// fdtd-apml: representative 3-D anisotropic-PML update (the Polybench
/// kernel's dominant nest: many operands, one stencil dependence on the
/// innermost dimension handled by separate launches).
pub const FDTD_APML: &str = "
kernel apml_bza(CZ, CYM, CXM) {
  for (iz: CZ) for (iy: CYM) for (ix: CXM)
    Bza[iz][iy][ix] = tmp[iz][iy][ix] + Hz[iz][iy][ix] * czp[iz];
}
kernel apml_hz(CZ, CYM, CXM) {
  for (iz: CZ) for (iy: CYM) for (ix: CXM)
    Hz[iz][iy][ix] = Hz[iz][iy][ix] + cxmh[ix] * (Ex[iz][iy][ix] - Ey[iz][iy][ix]) + Bza[iz][iy][ix];
}";

/// conv-2d: direct 2-D convolution (the §V-D computer-vision kernel).
pub const CONV_2D: &str = "
kernel conv2d(H, W, R, S) {
  for (i: H) for (j: W) for (p: R) for (q: S)
    out[i][j] += in[i+p][j+q] * w[p][q];
}";

/// heat-3d: 7-point 3-D stencil over time, ping-pong buffers (4-D nest).
pub const HEAT_3D: &str = "
kernel heat3d_a(TSTEPS, N) {
  for seq (t: TSTEPS) for (i: N) for (j: N) for (k: N)
    B[i][j][k] = 0.125 * (A[i+1][j][k] - 2.0 * A[i][j][k] + A[i-1][j][k])
               + 0.125 * (A[i][j+1][k] - 2.0 * A[i][j][k] + A[i][j-1][k])
               + 0.125 * (A[i][j][k+1] - 2.0 * A[i][j][k] + A[i][j][k-1])
               + A[i][j][k];
}
kernel heat3d_b(TSTEPS, N) {
  for seq (t: TSTEPS) for (i: N) for (j: N) for (k: N)
    A[i][j][k] = 0.125 * (B[i+1][j][k] - 2.0 * B[i][j][k] + B[i-1][j][k])
               + 0.125 * (B[i][j+1][k] - 2.0 * B[i][j][k] + B[i][j-1][k])
               + 0.125 * (B[i][j][k+1] - 2.0 * B[i][j][k] + B[i][j][k-1])
               + B[i][j][k];
}";

/// syrk: symmetric rank-k update `C += alpha·A·Aᵀ` (rectangular
/// iteration space — the affine dialect has no triangular bounds).
pub const SYRK: &str = "
kernel syrk(N, M) {
  for (i: N) for (j: N) for (k: M)
    C[i][j] += alpha * A[i][k] * A[j][k];
}";

/// syr2k: symmetric rank-2k update.
pub const SYR2K: &str = "
kernel syr2k(N, M) {
  for (i: N) for (j: N) for (k: M)
    C[i][j] += alpha * A[i][k] * B[j][k] + alpha * B[i][k] * A[j][k];
}";

/// gesummv: scalar, vector and matrix multiplication
/// `y = alpha·A·x + beta·B·x`.
pub const GESUMMV: &str = "
kernel gesummv(N) {
  for (i: N) for (j: N)
    y[i] += alpha * A[i][j] * x[j] + beta * B[i][j] * x[j];
}";

/// doitgen: multi-resolution analysis kernel (4-D nest).
pub const DOITGEN: &str = "
kernel doitgen(NR, NQ, NP) {
  for (r: NR) for (q: NQ) for (p: NP) for (s: NP)
    sum[r][q][p] += A[r][q][s] * C4[s][p];
}";

/// b2mm: doubly-batched matrix multiplication — a 5-D affine nest used to
/// exercise the solver's 5-D class (§V-G groups formulations by loop
/// depth up to 5-D).
pub const B2MM: &str = "
kernel b2mm(BA, BB, NI, NJ, NK) {
  for (a: BA) for (b: BB) for (i: NI) for (j: NJ) for (k: NK)
    C[a][b][i][j] += A[a][b][i][k] * B[k][j];
}";

/// mttkrp: matricized tensor times Khatri–Rao product (§V-D).
pub const MTTKRP: &str = "
kernel mttkrp(I, J, K, L) {
  for (i: I) for (j: J) for (k: K) for (l: L)
    A[i][j] += B[i][k][l] * C[k][j] * D[l][j];
}";

#[cfg(test)]
mod tests {
    use super::*;
    use eatss_affine::parser::parse_program;

    #[test]
    fn heat3d_is_a_single_statement_per_kernel() {
        let p = parse_program(HEAT_3D).unwrap();
        assert_eq!(p.kernels.len(), 2);
        for k in &p.kernels {
            assert_eq!(k.stmts.len(), 1);
            assert_eq!(k.depth(), 4);
            // 7-point stencil reads + center reads.
            assert!(k.stmts[0].reads.len() >= 7);
        }
    }

    #[test]
    fn fdtd_2d_has_three_field_kernels() {
        let p = parse_program(FDTD_2D).unwrap();
        assert_eq!(p.kernels.len(), 3);
        assert!(p.kernels.iter().all(|k| k.dims[0].explicit_serial));
    }

    #[test]
    fn mttkrp_reads_three_operands() {
        let p = parse_program(MTTKRP).unwrap();
        let s = &p.kernels[0].stmts[0];
        assert_eq!(s.reads.len(), 3);
        assert_eq!(s.reads[0].subscripts.len(), 3, "B is a 3-way tensor");
    }

    #[test]
    fn mvt_second_kernel_is_transposed() {
        let p = parse_program(MVT).unwrap();
        let a = &p.kernels[1].stmts[0].reads[0];
        assert_eq!(a.array, "A");
        // A[j][i]: first subscript uses dim 1 (j).
        assert!(a.subscripts[0].uses(1));
        assert!(a.subscripts[1].uses(0));
    }
}
