//! Every registered benchmark nest must survive the front end twice
//! over: the zero-copy engine must agree with `parser::reference` on its
//! source, and `parse(pretty(p)) == p` (the ROADMAP round-trip
//! acceptance for the real front end).

use eatss_affine::parser::{parse_named_program, reference};
use eatss_affine::pretty::pretty_program;
use eatss_kernels::all;

#[test]
fn every_benchmark_parses_identically_in_both_engines() {
    for bench in all() {
        let fast = parse_named_program(bench.name, bench.source);
        let base = reference::parse_named_program(bench.name, bench.source);
        assert_eq!(fast, base, "engines diverge on `{}`", bench.name);
        assert!(fast.is_ok(), "`{}` failed to parse", bench.name);
    }
}

#[test]
fn every_benchmark_roundtrips_through_pretty() {
    for bench in all() {
        let program = bench.program().unwrap();
        let printed = pretty_program(&program);
        let reparsed = parse_named_program(&program.name, &printed)
            .unwrap_or_else(|e| panic!("`{}` pretty output failed to re-parse: {e}", bench.name));
        assert_eq!(reparsed, program, "`{}` is not a fixpoint", bench.name);
    }
}
