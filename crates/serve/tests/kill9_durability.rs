//! Spawns the real `eatss-serve` binary, commits solutions, SIGKILLs it
//! mid-flight, restarts on the same cache directory, and asserts every
//! committed entry survived. This is the crash-safety claim of DESIGN.md
//! §12 exercised end-to-end through the process boundary.

use eatss_serve::client::{Client, SelectArgs};
use eatss_trace::json::Json;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct Daemon {
    child: Child,
    addr: String,
    ready: Json,
}

impl Daemon {
    fn spawn(cache_dir: &std::path::Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_eatss-serve"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--cache-dir")
            .arg(cache_dir)
            .arg("--workers")
            .arg("2")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn eatss-serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("ready line");
        let ready = Json::parse(&line).expect("ready line is JSON");
        assert_eq!(ready.get("ready").and_then(Json::as_bool), Some(true));
        let addr = ready
            .get("addr")
            .and_then(Json::as_str)
            .expect("addr in ready line")
            .to_string();
        Daemon { child, addr, ready }
    }

    fn client(&self) -> Client {
        Client::connect_tcp(&self.addr).expect("connect to daemon")
    }

    fn kill9(mut self) {
        // `Child::kill` is SIGKILL on unix: no drain, no flush, no
        // destructor runs in the daemon.
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn status(reply: &Json) -> &str {
    reply.get("status").and_then(Json::as_str).unwrap_or("")
}

#[test]
fn kill9_loses_no_committed_entry_and_warm_starts() {
    let dir = std::env::temp_dir().join(format!("eatss-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Round 1: commit a handful of solutions (and one infeasibility),
    // then SIGKILL with a request still in flight.
    let committed: Vec<(SelectArgs, String, String)> = {
        let daemon = Daemon::spawn(&dir, &[]);
        assert_eq!(daemon.ready.get("replayed").and_then(Json::as_f64), Some(0.0));
        let mut client = daemon.client();
        let mut committed = Vec::new();
        for (kernel, n) in [("gemm", 1024), ("atax", 2000), ("bicg", 512), ("gemm", 8)] {
            let mut args = SelectArgs::kernel(kernel);
            args.n = Some(n);
            let reply = client.select(&args).unwrap();
            let st = status(&reply).to_string();
            assert!(st == "ok" || st == "infeasible", "{reply:?}");
            committed.push((args, st, format!("{:?}", reply.get("tiles"))));
        }
        // Fire-and-forget: a request the daemon will die holding.
        let mut inflight = SelectArgs::kernel("mvt");
        inflight.n = Some(4000);
        client
            .write_raw(format!("{}\n", inflight.to_line()).as_bytes())
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        daemon.kill9();
        committed
    };

    // Round 2: restart on the same directory. Every committed entry is
    // replayed (the in-flight one may or may not have made it — both
    // are fine; what is forbidden is losing an answered request).
    let daemon = Daemon::spawn(&dir, &[]);
    let replayed = daemon.ready.get("replayed").and_then(Json::as_f64).unwrap();
    assert!(
        replayed >= committed.len() as f64,
        "replayed {replayed} < committed {}",
        committed.len()
    );
    assert_eq!(
        daemon.ready.get("corrupt_records_skipped").and_then(Json::as_f64),
        Some(0.0),
        "SIGKILL must not corrupt committed records"
    );

    let mut client = daemon.client();
    for (args, st, tiles) in &committed {
        let reply = client.select(args).unwrap();
        assert_eq!(status(&reply), st, "{reply:?}");
        assert_eq!(reply.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(&format!("{:?}", reply.get("tiles")), tiles);
    }
    let stats = client.stats().unwrap();
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(
        cache.get("misses").and_then(Json::as_f64),
        Some(0.0),
        "warm start: nothing re-solved after restart"
    );

    // In-band shutdown drains cleanly.
    let reply = client.shutdown().unwrap();
    assert_eq!(status(&reply), "ok");
    let _ = std::fs::remove_dir_all(&dir);
}
