//! Observability integration tests: the `metrics` op (JSON registry +
//! Prometheus exposition), the `trace` op (flight-recorder export as a
//! Chrome trace), the structured access log, and garbage-ratio driven
//! auto-compaction.

use eatss::cache::encode_key;
use eatss::{EatssConfig, JournalConfig, PersistentTileCache};
use eatss_affine::parser::parse_program;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_serve::client::{Client, SelectArgs};
use eatss_serve::server::{start, ServerConfig, ServerHandle};
use eatss_trace::json::Json;
use std::path::PathBuf;
use std::time::Duration;

fn test_server(mutate: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig {
        read_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    mutate(&mut config);
    start(config).expect("server starts")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect_tcp(&handle.tcp_addr().unwrap().to_string()).expect("connect")
}

fn status(reply: &Json) -> &str {
    reply.get("status").and_then(Json::as_str).unwrap_or("")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eatss-observability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mm() -> Program {
    parse_program(
        "kernel mm(M, N, P) {
           for (i: M) for (j: N) for (k: P)
             C[i][j] += A[i][k] * B[k][j];
         }",
    )
    .unwrap()
}

#[test]
fn metrics_op_reports_histograms_and_gauges() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(512);
    assert_eq!(status(&client.select(&args).unwrap()), "ok");

    let reply = client.metrics().unwrap();
    assert_eq!(status(&reply), "ok");
    let metrics = reply.get("metrics").expect("metrics object");

    // Lifetime request counters are mirrored into the registry.
    let requests = metrics
        .get("gauges")
        .and_then(|g| g.get("serve.requests"))
        .and_then(Json::as_f64)
        .expect("serve.requests gauge");
    assert!(requests >= 1.0);

    // The request latency histogram saw the select, and its quantiles
    // come back monotone.
    let hist = metrics
        .get("histograms")
        .and_then(|h| h.get("serve.request_us"))
        .expect("serve.request_us histogram");
    let count = hist.get("count").and_then(Json::as_f64).unwrap();
    assert!(count >= 1.0, "count = {count}");
    let p50 = hist.get("p50").and_then(Json::as_f64).unwrap();
    let p99 = hist.get("p99").and_then(Json::as_f64).unwrap();
    let max = hist.get("max").and_then(Json::as_f64).unwrap();
    assert!(p50 <= p99 && p99 <= max, "p50={p50} p99={p99} max={max}");
    // The solve stage landed in its own histogram (the request missed).
    let solve = metrics
        .get("histograms")
        .and_then(|h| h.get("serve.solve_us"))
        .expect("serve.solve_us histogram");
    assert!(solve.get("count").and_then(Json::as_f64).unwrap() >= 1.0);

    // Self-monitoring gauges refreshed by the op.
    let gauges = metrics.get("gauges").expect("gauges object");
    for name in ["serve.queue_depth", "serve.in_flight", "serve.shed_rate", "journal.garbage_ratio"] {
        assert!(gauges.get(name).is_some(), "missing gauge {name}");
    }

    // Prometheus text carries the same histogram as cumulative buckets.
    let prom = reply.get("prometheus").and_then(Json::as_str).unwrap();
    assert!(prom.contains("# TYPE serve_request_us histogram"), "{prom}");
    assert!(prom.contains("serve_request_us_bucket{le=\"+Inf\"}"), "{prom}");
    assert!(prom.contains("serve_request_us{quantile=\"0.99\"}"), "{prom}");
    assert!(prom.contains("journal_garbage_ratio"), "{prom}");
    handle.shutdown();
}

#[test]
fn trace_op_exports_chrome_trace_of_recorded_requests() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);

    // Before any select, the flight recorder is empty.
    let empty = client.trace_export("slowest", 1).unwrap();
    assert_eq!(status(&empty), "error");
    assert_eq!(
        empty.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("empty_flight")
    );

    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(512);
    args.id = Some("req-1".to_string());
    assert_eq!(status(&client.select(&args).unwrap()), "ok");
    args.id = Some("req-2".to_string());
    assert_eq!(status(&client.select(&args).unwrap()), "ok");

    let reply = client.trace_export("slowest", 1).unwrap();
    assert_eq!(status(&reply), "ok");
    let requests = reply.get("requests").and_then(Json::as_array).unwrap();
    assert_eq!(requests.len(), 1);
    let top = &requests[0];
    assert_eq!(top.get("kernel").and_then(Json::as_str), Some("gemm"));
    assert_eq!(top.get("outcome").and_then(Json::as_str), Some("ok"));
    // The solved (miss) request is strictly slower than the cache hit.
    assert_eq!(top.get("cache").and_then(Json::as_str), Some("miss"));
    assert!(top.get("dur_us").and_then(Json::as_f64).unwrap() > 0.0);

    // The embedded trace is a Chrome trace document with the request's
    // span tree: serve:request wraps serve:solve wraps smt spans.
    let trace = reply.get("trace").expect("trace document");
    let events = trace.get("traceEvents").and_then(Json::as_array).unwrap();
    let spans: Vec<(&str, &str)> = events
        .iter()
        .filter_map(|e| {
            let cat = e.get("cat").and_then(Json::as_str)?;
            let name = e.get("name").and_then(Json::as_str)?;
            Some((cat, name))
        })
        .collect();
    assert!(spans.contains(&("serve", "request")), "{spans:?}");
    assert!(spans.contains(&("serve", "solve")), "{spans:?}");
    assert!(spans.contains(&("smt", "maximize")), "{spans:?}");
    // Histograms ride along as counter samples (no cat on C events).
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"serve.request_us"), "{names:?}");

    // `recent` returns newest first; both requests are present.
    let recent = client.trace_export("recent", 8).unwrap();
    let recent_ids: Vec<&str> = recent
        .get("requests")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    assert_eq!(recent_ids, vec!["req-2", "req-1"]);

    // No failures yet, so the error ring is empty.
    let errors = client.trace_export("errors", 8).unwrap();
    assert_eq!(status(&errors), "error");
    handle.shutdown();
}

#[test]
fn access_log_records_one_parseable_line_per_request() {
    let dir = temp_dir("access-log");
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.jsonl");
    let handle = test_server(|c| c.access_log = Some(log_path.clone()));
    let mut client = connect(&handle);

    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(512);
    args.id = Some("first".to_string());
    assert_eq!(status(&client.select(&args).unwrap()), "ok");
    assert_eq!(status(&client.select(&args).unwrap()), "ok");
    assert_eq!(status(&client.metrics().unwrap()), "ok");
    handle.shutdown();

    let text = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).expect("access log line parses"))
        .collect();
    let selects: Vec<&Json> = lines
        .iter()
        .filter(|l| l.get("op").and_then(Json::as_str) == Some("select"))
        .collect();
    assert_eq!(selects.len(), 2, "{text}");
    let miss = selects[0];
    assert_eq!(miss.get("id").and_then(Json::as_str), Some("first"));
    assert_eq!(miss.get("kernel").and_then(Json::as_str), Some("gemm"));
    assert_eq!(miss.get("outcome").and_then(Json::as_str), Some("ok"));
    assert_eq!(miss.get("cache").and_then(Json::as_str), Some("miss"));
    assert!(miss.get("ts_ms").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(miss.get("latency_us").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(miss.get("solve_us").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(miss.get("deadline_ms").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(miss.get("git_sha").is_some());
    let hit = selects[1];
    assert_eq!(hit.get("cache").and_then(Json::as_str), Some("hit"));
    // The cache fast path never queues or solves.
    assert_eq!(hit.get("solve_us").and_then(Json::as_f64), Some(0.0));
    assert_eq!(hit.get("queue_us").and_then(Json::as_f64), Some(0.0));
    // Management ops are logged too.
    assert!(
        lines
            .iter()
            .any(|l| l.get("op").and_then(Json::as_str) == Some("metrics")),
        "{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_ratio_past_threshold_triggers_auto_compaction() {
    let dir = temp_dir("auto-compact");
    let cfg = EatssConfig::default();

    // Build a journal whose garbage ratio is exactly 0.5 by superseding
    // one record with an equal-size copy.
    {
        let mut cache =
            PersistentTileCache::open(&dir, GpuArch::ga100(), JournalConfig::default()).unwrap();
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let solution = cache.select(&mm(), &sizes, &cfg).unwrap();
        let key = encode_key(&GpuArch::ga100(), &mm(), &sizes, &cfg);
        cache.insert_key(key, Ok(solution)).unwrap();
        assert!((cache.garbage_ratio() - 0.5).abs() < 1e-9);
    }

    // A server opening that journal past its threshold compacts at
    // startup and counts it.
    let handle = test_server(|c| {
        c.cache_dir = Some(dir.clone());
        c.compact_garbage_ratio = Some(0.4);
    });
    let mut client = connect(&handle);
    let reply = client.metrics().unwrap();
    let metrics = reply.get("metrics").unwrap();
    let compactions = metrics
        .get("counters")
        .and_then(|c| c.get("journal.auto_compactions"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(compactions >= 1.0, "startup compaction not counted");
    let ratio = metrics
        .get("gauges")
        .and_then(|g| g.get("journal.garbage_ratio"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(ratio, 0.0, "compaction reclaims all garbage");
    handle.shutdown();

    // With auto-compaction disabled the garbage survives startup.
    {
        let mut cache =
            PersistentTileCache::open(&dir, GpuArch::ga100(), JournalConfig::default()).unwrap();
        let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
        let cached = cache.select(&mm(), &sizes, &cfg).unwrap();
        let key = encode_key(&GpuArch::ga100(), &mm(), &sizes, &cfg);
        cache.insert_key(key, Ok(cached)).unwrap();
    }
    let handle = test_server(|c| {
        c.cache_dir = Some(dir.clone());
        c.compact_garbage_ratio = None;
    });
    let mut client = connect(&handle);
    let reply = client.metrics().unwrap();
    let ratio = reply
        .get("metrics")
        .and_then(|m| m.get("gauges"))
        .and_then(|g| g.get("journal.garbage_ratio"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(ratio > 0.4, "garbage kept when auto-compaction is off: {ratio}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
