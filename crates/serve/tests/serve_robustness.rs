//! In-process robustness tests for the tuning daemon: protocol
//! hardening, coalescing, overload shedding, panic isolation, deadline
//! anytime behaviour, infeasible caching, unix sockets, graceful drain.

use eatss_serve::client::{Client, SelectArgs};
use eatss_serve::server::{start, Endpoint, ServerConfig, ServerHandle};
use eatss_trace::json::Json;
use std::path::PathBuf;
use std::time::Duration;

fn test_server(mutate: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig {
        read_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    mutate(&mut config);
    start(config).expect("server starts")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect_tcp(&handle.tcp_addr().unwrap().to_string()).expect("connect")
}

fn status(reply: &Json) -> &str {
    reply.get("status").and_then(Json::as_str).unwrap_or("")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eatss-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn select_solves_and_second_request_hits() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(1024);
    let first = client.select(&args).unwrap();
    assert_eq!(status(&first), "ok");
    assert_eq!(
        first.get("provenance").and_then(Json::as_str),
        Some("solved")
    );
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
    let tiles = format!("{:?}", first.get("tiles").unwrap());

    let second = client.select(&args).unwrap();
    assert_eq!(status(&second), "ok");
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(format!("{:?}", second.get("tiles").unwrap()), tiles);

    let stats = handle.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    handle.shutdown();
}

#[test]
fn infeasible_is_served_from_cache_not_resolved() {
    // Satellite: `Unsatisfiable` is a valid, cacheable answer. The
    // second request must be a cache hit counted against the entry
    // recorded in `TileCacheStats::infeasible`, not a re-solve.
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(8); // WAF 16 > extents of 8 ⇒ proved unsatisfiable

    let first = client.select(&args).unwrap();
    assert_eq!(status(&first), "infeasible");
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));

    let second = client.select(&args).unwrap();
    assert_eq!(status(&second), "infeasible");
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));

    let stats = handle.cache_stats();
    assert_eq!(stats.infeasible, 1, "one infeasible entry, solved once");
    assert_eq!(stats.misses, 1, "second request must not re-solve");
    assert_eq!(stats.hits, 1);
    handle.shutdown();
}

#[test]
fn malformed_lines_get_typed_errors_and_connection_survives() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);

    let reply = client.request_line("this is not json").unwrap();
    assert_eq!(status(&reply), "error");
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("bad_json")
    );

    let reply = client.request_line("[1, 2, 3]").unwrap();
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("not_an_object")
    );

    let reply = client.request_line(r#"{"op": "select"}"#).unwrap();
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("missing_field")
    );

    let reply = client
        .request_line(r#"{"kernel": "not-a-kernel"}"#)
        .unwrap();
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("unknown_kernel")
    );

    // After four garbage lines the same connection still works.
    assert_eq!(status(&client.ping().unwrap()), "ok");
    handle.shutdown();
}

#[test]
fn oversized_frame_is_rejected_and_connection_closed() {
    let handle = test_server(|c| c.max_frame_bytes = 1024);
    let mut client = connect(&handle);
    client.write_raw(&vec![b'a'; 4096]).unwrap();
    let reply = client.read_response().unwrap();
    assert_eq!(status(&reply), "error");
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("frame_too_large")
    );
    // Framing is lost: the server closes. A fresh connection works.
    let mut fresh = connect(&handle);
    assert_eq!(status(&fresh.ping().unwrap()), "ok");
    handle.shutdown();
}

#[test]
fn slow_loris_is_cut_off_idle_keepalive_is_not() {
    let handle = test_server(|c| c.read_timeout = Duration::from_millis(300));

    // Idle (no partial frame): connection survives well past the stall
    // budget.
    let mut idle = connect(&handle);
    std::thread::sleep(Duration::from_millis(700));
    assert_eq!(status(&idle.ping().unwrap()), "ok");

    // Mid-frame stall: timeout error, then close.
    let mut loris = connect(&handle);
    loris.write_raw(b"{\"op\": \"sel").unwrap();
    std::thread::sleep(Duration::from_millis(700));
    let reply = loris.read_response().unwrap();
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("timeout")
    );
    handle.shutdown();
}

#[test]
fn worker_panic_becomes_error_response_and_daemon_survives() {
    let handle = test_server(|c| c.allow_chaos = true);
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(700);
    args.chaos = Some("panic".to_string());
    let reply = client.select(&args).unwrap();
    assert_eq!(status(&reply), "error");
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("worker_panic")
    );
    assert_eq!(handle.stats().panics_caught, 1);

    // Same connection, same worker pool: a real solve still succeeds.
    args.chaos = None;
    let reply = client.select(&args).unwrap();
    assert_eq!(status(&reply), "ok");
    handle.shutdown();
}

#[test]
fn overload_sheds_with_retry_hint() {
    let handle = test_server(|c| {
        c.allow_chaos = true;
        c.workers = 1;
        c.queue_capacity = 2;
    });
    let addr = handle.tcp_addr().unwrap().to_string();
    // Saturate: 8 concurrent slow requests with distinct keys against a
    // queue of 2 and one worker.
    let mut threads = Vec::new();
    for i in 0..8 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).unwrap();
            let mut args = SelectArgs::kernel("gemm");
            args.n = Some(3000 + i);
            args.chaos = Some("sleep:300".to_string());
            client.select(&args).unwrap()
        }));
    }
    let replies: Vec<Json> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let shed: Vec<&Json> = replies.iter().filter(|r| status(r) == "overloaded").collect();
    assert!(!shed.is_empty(), "queue of 2 must shed some of 8 requests");
    for r in &shed {
        let hint = r.get("retry_after_ms").and_then(Json::as_f64);
        assert!(hint.is_some_and(|ms| ms >= 50.0), "hint in {r:?}");
    }
    assert_eq!(handle.stats().shed, shed.len() as u64);
    handle.shutdown();
}

#[test]
fn identical_concurrent_requests_coalesce_to_one_solve() {
    let handle = test_server(|c| {
        c.allow_chaos = true;
        c.workers = 2;
    });
    let addr = handle.tcp_addr().unwrap().to_string();
    let mut threads = Vec::new();
    for _ in 0..6 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).unwrap();
            let mut args = SelectArgs::kernel("atax");
            args.n = Some(4000);
            // The sleep keeps the first request in flight while the rest
            // arrive, making coalescing deterministic.
            args.chaos = Some("sleep:250".to_string());
            client.select(&args).unwrap()
        }));
        std::thread::sleep(Duration::from_millis(20));
    }
    let replies: Vec<Json> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let tiles: Vec<String> = replies
        .iter()
        .map(|r| {
            assert_eq!(status(r), "ok", "{r:?}");
            format!("{:?}", r.get("tiles").unwrap())
        })
        .collect();
    assert!(tiles.windows(2).all(|w| w[0] == w[1]), "all waiters share one solution");
    let coalesced = replies
        .iter()
        .filter(|r| r.get("cache").and_then(Json::as_str) == Some("coalesced"))
        .count();
    assert!(coalesced >= 4, "expected most requests to coalesce, got {coalesced}");
    // One solve for the whole herd.
    assert_eq!(handle.cache_stats().misses, 1);
    handle.shutdown();
}

#[test]
fn tiny_deadline_still_answers_with_provenance() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(2000);
    args.deadline_ms = Some(1);
    let reply = client.select(&args).unwrap();
    // Anytime contract: either a best-so-far solution (incomplete) or
    // the 32^d fallback — never a hang, never a bare failure.
    assert_eq!(status(&reply), "ok", "{reply:?}");
    let provenance = reply.get("provenance").and_then(Json::as_str).unwrap();
    assert!(
        ["solved", "incomplete", "fallback"].contains(&provenance),
        "unexpected provenance {provenance}"
    );
    handle.shutdown();
}

#[test]
fn evaluate_attaches_measurement() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("mvt");
    args.n = Some(4000);
    args.evaluate = true;
    let reply = client.select(&args).unwrap();
    assert_eq!(status(&reply), "ok");
    let eval = reply.get("eval").expect("eval section");
    assert!(eval.get("energy_j").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(eval.get("ppw").and_then(Json::as_f64).unwrap() > 0.0);
    handle.shutdown();
}

#[test]
fn verify_attaches_batched_oracle_verdict() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(64);
    args.verify = true;
    let reply = client.select(&args).unwrap();
    assert_eq!(status(&reply), "ok");
    let verify = reply.get("verify").expect("verify section");
    // The selection plus the 32^d fallback config, each executed and
    // compared bitwise against the reference interpreter.
    assert!(verify.get("configs").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(verify.get("points").and_then(Json::as_f64).unwrap() > 0.0);
    handle.shutdown();
}

#[test]
fn inline_source_requests_work() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let args = SelectArgs {
        source: Some(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }"
            .to_string(),
        ),
        n: Some(1500),
        ..SelectArgs::default()
    };
    let reply = client.select(&args).unwrap();
    assert_eq!(status(&reply), "ok", "{reply:?}");
    assert_eq!(
        reply.get("tiles").and_then(Json::as_array).map(<[Json]>::len),
        Some(3)
    );
    handle.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_socket_endpoint_works() {
    let path = std::env::temp_dir().join(format!("eatss-serve-{}.sock", std::process::id()));
    let handle = test_server(|c| c.endpoint = Endpoint::Unix(path.clone()));
    let mut client = Client::connect_unix(&path).expect("unix connect");
    assert_eq!(status(&client.ping().unwrap()), "ok");
    let mut args = SelectArgs::kernel("bicg");
    args.n = Some(1024);
    assert_eq!(status(&client.select(&args).unwrap()), "ok");
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn graceful_drain_finishes_queued_work() {
    let dir = temp_dir("drain");
    let handle = test_server(|c| {
        c.allow_chaos = true;
        c.cache_dir = Some(dir.clone());
        c.workers = 1;
    });
    let addr = handle.tcp_addr().unwrap().to_string();
    // Put a slow job in flight, then shut down while it runs.
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(&addr).unwrap();
        let mut args = SelectArgs::kernel("gesummv");
        args.n = Some(1024);
        args.chaos = Some("sleep:300".to_string());
        client.select(&args).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    let stats = handle.shutdown(); // must drain, not abandon
    let reply = worker.join().unwrap();
    assert_eq!(status(&reply), "ok", "in-flight request completes during drain");
    assert_eq!(stats.ok, 1);

    // The drained result was committed before the response went out.
    let handle = test_server(|c| c.cache_dir = Some(dir.clone()));
    assert_eq!(handle.replayed(), 1, "drained solve is durable");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_after_clean_restart() {
    let dir = temp_dir("warm");
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(900);
    let tiles = {
        let handle = test_server(|c| c.cache_dir = Some(dir.clone()));
        let mut client = connect(&handle);
        let reply = client.select(&args).unwrap();
        assert_eq!(status(&reply), "ok");
        let tiles = format!("{:?}", reply.get("tiles").unwrap());
        handle.shutdown();
        tiles
    };
    let handle = test_server(|c| c.cache_dir = Some(dir.clone()));
    assert_eq!(handle.replayed(), 1);
    let mut client = connect(&handle);
    let reply = client.select(&args).unwrap();
    assert_eq!(reply.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(format!("{:?}", reply.get("tiles").unwrap()), tiles);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_op_reports_counters() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(640);
    client.select(&args).unwrap();
    client.select(&args).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(status(&stats), "ok");
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
    let server = stats.get("server").expect("server section");
    assert!(server.get("requests").and_then(Json::as_f64).unwrap() >= 3.0);
    handle.shutdown();
}

#[test]
fn pareto_op_returns_front_and_journals_solved_configs() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("gemm");
    args.n = Some(1024);
    args.pareto = true;
    let reply = client.select(&args).unwrap();
    assert_eq!(status(&reply), "ok");
    assert_eq!(reply.get("device").and_then(Json::as_str), Some("GA100"));
    let front: Vec<Json> = reply
        .get("front")
        .and_then(Json::as_array)
        .expect("front array")
        .to_vec();
    assert!(!front.is_empty(), "a measurable sweep has a front");
    let points = reply.get("points").and_then(Json::as_f64).unwrap();
    assert!(front.len() as f64 <= points);
    // Deterministic ordering: ascending energy, strictly increasing
    // throughput — which also proves no front point dominates another.
    let coords: Vec<(f64, f64)> = front
        .iter()
        .map(|e| {
            (
                e.get("energy_j").and_then(Json::as_f64).unwrap(),
                e.get("gflops").and_then(Json::as_f64).unwrap(),
            )
        })
        .collect();
    for pair in coords.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "front not sorted by energy");
        assert!(pair[0].1 < pair[1].1, "front throughput not increasing");
    }

    // The worker journaled each fully-solved configuration under its own
    // structural key: selecting one of them is a cache hit, not a solve.
    let solved = front
        .iter()
        .find(|e| e.get("provenance").and_then(Json::as_str) == Some("solved"))
        .expect("at least one solved front point");
    let mut select = SelectArgs::kernel("gemm");
    select.n = Some(1024);
    select.split = solved.get("split").and_then(Json::as_f64);
    select.warp_frac = solved.get("warp_frac").and_then(Json::as_f64);
    select.strict_cap = matches!(solved.get("strict_cap"), Some(Json::Bool(true)));
    let hit = client.select(&select).unwrap();
    assert_eq!(status(&hit), "ok");
    assert_eq!(hit.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(
        format!("{:?}", hit.get("tiles").unwrap()),
        format!("{:?}", solved.get("tiles").unwrap()),
        "cached selection and front point disagree"
    );
    handle.shutdown();
}

#[test]
fn pareto_verify_runs_batched_oracle_over_the_front() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    let mut args = SelectArgs::kernel("mvt");
    args.n = Some(700);
    args.pareto = true;
    args.verify = true;
    let reply = client.select(&args).unwrap();
    assert_eq!(status(&reply), "ok");
    let front_len = reply
        .get("front")
        .and_then(Json::as_array)
        .expect("front array")
        .len();
    let verify = reply.get("verify").expect("verify section in response");
    assert_eq!(
        verify.get("configs").and_then(Json::as_f64),
        Some(front_len as f64),
        "every front point goes through the oracle"
    );
    assert!(verify.get("points").and_then(Json::as_f64).unwrap() > 0.0);
    handle.shutdown();
}

#[test]
fn device_field_scopes_requests_and_rejects_unknown_names() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);
    // Every built-in profile answers.
    for device in ["ga100", "xavier", "h100", "orin", "nano"] {
        let mut args = SelectArgs::kernel("gemm");
        args.n = Some(512);
        args.arch = Some(device.to_string());
        let reply = client.select(&args).unwrap();
        assert!(
            status(&reply) == "ok" || status(&reply) == "infeasible",
            "device {device} failed: {reply:?}"
        );
    }
    // Different devices are different cache keys: ga100 and xavier
    // selections above were both misses, never cross-hits.
    let stats = handle.cache_stats();
    assert_eq!(stats.hits, 0);
    // An unknown device is a typed protocol error naming the field.
    let reply = client
        .request_line(r#"{"kernel": "gemm", "device": "tpu9"}"#)
        .unwrap();
    assert_eq!(status(&reply), "error");
    let err = reply.get("error").expect("error body");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad_field"));
    assert!(err
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("device"));
    handle.shutdown();
}

#[test]
fn select_without_kernel_or_source_is_typed_and_worker_survives() {
    // Regression: a select carrying neither `kernel` nor `source` used to
    // reach the resolver's `.expect("kernel or source required")`. The
    // protocol layer answers `missing_field` and the resolver itself now
    // degrades to a typed `bad_field` — either way, no worker panics and
    // the connection keeps serving.
    let handle = test_server(|_| {});
    let mut client = connect(&handle);

    let reply = client
        .request_line(r#"{"op": "select", "n": 64}"#)
        .unwrap();
    assert_eq!(status(&reply), "error");
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("missing_field")
    );

    assert_eq!(status(&client.ping().unwrap()), "ok");
    assert_eq!(handle.stats().panics_caught, 0, "no worker panic");
    handle.shutdown();
}

#[test]
fn inline_source_selects_are_served_from_the_parse_cache() {
    let handle = test_server(|_| {});
    let mut client = connect(&handle);

    let counter = |client: &mut Client, name: &str| -> f64 {
        client
            .metrics()
            .unwrap()
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    // Counters are process-global, so assert monotone deltas rather than
    // absolute values.
    let bytes_before = counter(&mut client, "parse.bytes");
    let hits_before = counter(&mut client, "parse.cache_hits");

    let source = "kernel scaled_copy(N) { for (i: N) out_buf[i] = in_buf[i] * 0.5; }";
    let args = SelectArgs {
        source: Some(source.to_string()),
        n: Some(256),
        ..SelectArgs::default()
    };
    assert_eq!(status(&client.select(&args).unwrap()), "ok");
    assert_eq!(status(&client.select(&args).unwrap()), "ok");

    let bytes_after = counter(&mut client, "parse.bytes");
    let hits_after = counter(&mut client, "parse.cache_hits");
    assert!(
        bytes_after >= bytes_before + source.len() as f64,
        "first select must parse the source: {bytes_before} -> {bytes_after}"
    );
    assert!(
        hits_after >= hits_before + 1.0,
        "second identical select must hit the parse cache: {hits_before} -> {hits_after}"
    );

    // The front-end stage has its own latency histogram.
    let parse_us = client
        .metrics()
        .unwrap()
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("serve.parse_us"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(parse_us >= 2.0, "both selects time the parse stage: {parse_us}");
    handle.shutdown();
}
