//! **eatss-serve** — a crash-safe tile-selection daemon.
//!
//! Wraps the EATSS solve→compile→measure pipeline in a long-running
//! service speaking JSON-lines over TCP or a unix socket. A request
//! names a kernel (PolyBench benchmark or inline DSL source), problem
//! sizes, configuration knobs, and an optional deadline; the response
//! carries the selected tiles with provenance, served from a journaled
//! [`PersistentTileCache`](eatss::PersistentTileCache) that warm-starts
//! across restarts — including `kill -9`.
//!
//! See DESIGN.md §12 for the protocol grammar, the journal byte layout,
//! the crash-safety argument, and the overload semantics. The
//! load-test/chaos harness lives in the `bench_serve` binary.
//!
//! # Examples
//!
//! ```
//! use eatss_serve::{start, Client, ServerConfig};
//!
//! let handle = start(ServerConfig::default())?;
//! let mut client = Client::connect_tcp(&handle.tcp_addr().unwrap().to_string())?;
//! let reply = client.request_line(r#"{"op": "ping"}"#)?;
//! assert_eq!(reply.get("status").and_then(|s| s.as_str()), Some("ok"));
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod flight;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use flight::{FlightRecorder, RequestRecord, TraceWhich};
pub use protocol::{
    parse_request, FrameReader, Op, ProtocolError, Request, SelectRequest, SizeSpec, TraceQuery,
    PROTOCOL_VERSION,
};
pub use server::{start, Endpoint, ServerAddr, ServerConfig, ServerHandle, ServerStats};

use eatss::PipelineError;
use std::fmt;

/// Everything the daemon can answer `status: "error"` (or `overloaded`)
/// with — the service-level extension of the core crate's
/// [`PipelineError`] taxonomy. Pipeline failures keep their stage
/// classification; the other variants are service-only conditions that
/// have no pipeline stage.
#[derive(Debug)]
pub enum ServeError {
    /// The request never became a valid pipeline invocation.
    Protocol(ProtocolError),
    /// The pipeline itself failed (formulate/solve/compile/measure).
    Pipeline(PipelineError),
    /// Admission control shed the request.
    Overloaded {
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// The solve panicked; the daemon caught it and kept serving.
    WorkerPanic(String),
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
}

impl ServeError {
    /// Stable wire identifier (`error.kind` in responses).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Protocol(e) => e.kind(),
            ServeError::Pipeline(_) => "pipeline",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::WorkerPanic(_) => "worker_panic",
            ServeError::ShuttingDown => "shutting_down",
        }
    }
}

impl fmt::Display for ServeError {
    /// `Display` is the wire `error.message`; keep it one line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(e) => write!(f, "{e}"),
            ServeError::Pipeline(e) => write!(f, "{e}"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry in {retry_after_ms} ms")
            }
            ServeError::WorkerPanic(msg) => write!(f, "solver panicked: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}
