//! The daemon: accept loop, admission control, worker pool, response
//! writing.
//!
//! Thread layout (all `std::thread`, no async runtime):
//!
//! ```text
//! acceptor ──► one thread per connection ──► bounded queue ──► workers
//!                    │  cache fast path                          │
//!                    ◄──────────── mpsc outcome channel ─────────┘
//! ```
//!
//! Robustness properties, in the order the ISSUE lists them:
//!
//! 1. *Request hardening* — frames are size-capped while being read,
//!    socket reads tick every 100 ms so a mid-frame stall (slow-loris)
//!    trips the read timeout while idle keep-alive connections survive,
//!    and every malformed line becomes a typed error response.
//! 2. *Overload control* — the queue is bounded; admission past the
//!    bound returns an `overloaded` response with a retry-after hint.
//!    Concurrent identical requests coalesce on the canonical structural
//!    cache key: one solve, every waiter gets the outcome.
//! 3. *Panic isolation* — workers run jobs under `catch_unwind`; a
//!    panicking solve becomes a `worker_panic` error response and the
//!    worker returns to its loop.
//! 4. *Durability* — committed results go through
//!    [`PersistentTileCache::insert_key`], which journals *before* the
//!    response is sent: an `ok` answer implies the entry survives
//!    `kill -9`.

use crate::flight::{FlightRecorder, RequestRecord};
use crate::protocol::{
    object_line, parse_request, str_field, FrameReader, Op, ProtocolError, SelectRequest,
    SizeSpec, TraceQuery, PROTOCOL_VERSION,
};
use crate::ServeError;
use eatss::cache::encode_key;
use eatss::{
    Eatss, EatssError, EatssSolution, EvaluateError, JournalConfig, ModelGenerator,
    PersistentTileCache, SolutionProvenance, TileCacheStats,
};
use eatss_affine::ir::Extent;
use eatss_affine::parser::{parse_program, ParseError};
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::{FaultPlan, Gpu, GpuArch, SimReport};
use eatss_kernels::Dataset;
use eatss_ppcg::oracle::verify_sizes;
use eatss_smt::{CancelToken, SolverConfig, WarmStart};
use eatss_trace::json::number;
use eatss_trace::{instant, lane_scope, span, Event, Histogram, Provenance, Trace};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::fs::{File, OpenOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP; use port 0 to bind an ephemeral port (reported by
    /// [`ServerHandle::tcp_addr`]).
    Tcp(String),
    /// Unix domain socket path (removed and re-created on start).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon tunables. `Default` is sized for tests: localhost, ephemeral
/// port, ephemeral cache, two workers.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen endpoint.
    pub endpoint: Endpoint,
    /// Journal directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Journal layout/sync policy (used only with `cache_dir`).
    pub journal: JournalConfig,
    /// Solver worker threads.
    pub workers: usize,
    /// Bounded admission queue capacity; excess is shed.
    pub queue_capacity: usize,
    /// Maximum request line size in bytes.
    pub max_frame_bytes: usize,
    /// Mid-frame stall budget (slow-loris defence). Idle connections
    /// between frames are not subject to it.
    pub read_timeout: Duration,
    /// Per-write socket timeout.
    pub write_timeout: Duration,
    /// Solve deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Upper clamp for requested deadlines.
    pub max_deadline: Duration,
    /// How long shutdown waits for queued work before cancelling
    /// in-flight solves.
    pub drain_timeout: Duration,
    /// Honour test-only `chaos` request fields.
    pub allow_chaos: bool,
    /// Inject measurement faults into the evaluate path.
    pub fault_plan: Option<FaultPlan>,
    /// Architecture used when a request names none.
    pub default_arch: GpuArch,
    /// Flight-recorder ring capacity (recent / slowest / errors each).
    pub flight_requests: usize,
    /// Structured JSON-lines access log path (`None` disables).
    pub access_log: Option<PathBuf>,
    /// Auto-compact the journal when its garbage ratio exceeds this
    /// threshold (checked after each journal append and at startup).
    /// `None` disables auto-compaction.
    pub compact_garbage_ratio: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".to_string()),
            cache_dir: None,
            journal: JournalConfig::default(),
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: 1 << 20,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            allow_chaos: false,
            fault_plan: None,
            default_arch: GpuArch::ga100(),
            flight_requests: 64,
            access_log: None,
            compact_garbage_ratio: Some(0.5),
        }
    }
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines parsed (any op).
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `infeasible` responses.
    pub infeasible: u64,
    /// `error` responses (protocol + pipeline + panic).
    pub errors: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests answered by joining an in-flight identical solve.
    pub coalesced: u64,
    /// Malformed lines / framing violations.
    pub protocol_errors: u64,
    /// Worker panics converted to error responses.
    pub panics_caught: u64,
    /// Deadline/budget exhaustion answered with the `32^d` fallback.
    pub fallbacks: u64,
    /// Solves whose branch-and-bound incumbent was seeded from a prior
    /// solve of the same program structure (warm-start pool hits).
    pub warm_seeded: u64,
    /// Responses whose tiles were verified through the batched
    /// differential oracle (`verify: true` requests answered clean).
    pub verified: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    infeasible: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    coalesced: AtomicU64,
    protocol_errors: AtomicU64,
    panics_caught: AtomicU64,
    fallbacks: AtomicU64,
    warm_seeded: AtomicU64,
    verified: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            infeasible: self.infeasible.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            warm_seeded: self.warm_seeded.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
        }
    }
}

/// One admitted unit of solver work.
struct Job {
    /// Coalescing key: cache key ‖ evaluate flag ‖ verify flag ‖ chaos
    /// marker (‖ a trailing op marker byte for pareto jobs).
    coalesce_key: Vec<u8>,
    /// Pure structural cache key.
    cache_key: Vec<u8>,
    arch: GpuArch,
    program: Program,
    sizes: ProblemSizes,
    cfg: eatss::EatssConfig,
    deadline: Duration,
    evaluate: bool,
    verify: bool,
    /// Run the §V-B/§V-D configuration sweep and answer with the
    /// energy-vs-performance Pareto front instead of a single selection.
    pareto: bool,
    chaos: Option<String>,
    lane: u64,
    /// When admission enqueued the job (queue-wait measurement).
    admitted_at: Instant,
}

/// What a worker hands back to every waiter of a job. Short-lived (one
/// channel hop per waiter), so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Outcome {
    Done {
        result: Result<EatssSolution, EatssError>,
        eval: Option<Result<SimReport, String>>,
        verify: Option<Result<VerifySummary, String>>,
        fell_back: bool,
        served_from_cache: bool,
        /// Queue wait measured at worker pop (0 on the fast path).
        queue_us: u64,
        /// Worker time for the job (0 on the fast path).
        solve_us: u64,
    },
    Pareto {
        result: Result<ParetoReport, String>,
        queue_us: u64,
        solve_us: u64,
    },
    Panicked(String),
}

/// The answer to an `{"op":"pareto"}` request: the device-scoped
/// non-dominated front plus sweep bookkeeping.
#[derive(Debug, Clone)]
struct ParetoReport {
    /// Device profile the sweep ran on.
    device: String,
    /// Non-dominated points, ascending energy / descending throughput
    /// (the deterministic order of [`eatss::pareto_front`]).
    front: Vec<ParetoEntry>,
    /// Measured sweep points overall (front ⊆ points).
    points: usize,
    /// Configurations recorded infeasible (measured via fallback).
    infeasible: usize,
    /// Batched-oracle verdict over every front configuration
    /// (`verify: true` requests only).
    verify: Option<Result<VerifySummary, String>>,
}

/// One point of a [`ParetoReport`] front.
#[derive(Debug, Clone)]
struct ParetoEntry {
    tiles: Vec<i64>,
    split: f64,
    warp_fraction: f64,
    strict_cap: bool,
    provenance: String,
    energy_j: f64,
    gflops: f64,
    ppw: f64,
    time_ms: f64,
}

/// What a clean `verify: true` pass covered (batched oracle).
#[derive(Debug, Clone, Copy)]
struct VerifySummary {
    configs: u64,
    points: u64,
}

struct Dispatch {
    queue: VecDeque<Job>,
    /// Waiters per coalesce key, present from admission until broadcast.
    in_flight: HashMap<Vec<u8>, Vec<mpsc::Sender<Outcome>>>,
    active: usize,
}

enum Admission {
    Admitted(mpsc::Receiver<Outcome>),
    Coalesced(mpsc::Receiver<Outcome>),
    Shed { retry_after_ms: u64 },
    ShuttingDown,
}

struct Shared {
    config: ServerConfig,
    cache: Mutex<PersistentTileCache>,
    dispatch: Mutex<Dispatch>,
    work_cv: Condvar,
    idle_cv: Condvar,
    shutdown: AtomicBool,
    shutdown_signal: Mutex<bool>,
    shutdown_cv: Condvar,
    cancel: CancelToken,
    counters: Counters,
    conns: Mutex<Vec<StreamShutdown>>,
    /// Warm-start hints pooled by program structure: requests for the
    /// same (arch, program) at different sizes or configs share every
    /// constraint shape except the tile bounds, so prior optima seed the
    /// next solve's incumbent. Bounded LRU; purely an accelerator —
    /// complete solves return identical results with or without hints.
    warm: Mutex<Vec<(u64, WarmStart)>>,
    /// Parse-path cache for inline `source` requests: FNV of the source
    /// bytes → parsed [`Program`]. Repeated submissions of the same
    /// kernel text (autotuners resweeping, clients retrying) skip the
    /// front end entirely. Bounded LRU like [`Shared::warm`]; the full
    /// source is kept and compared on hit, so a hash collision can never
    /// serve the wrong program.
    parse_cache: Mutex<Vec<(u64, String, Program)>>,
    /// Bounded per-request span-tree rings (`trace` op).
    flight: Mutex<FlightRecorder>,
    /// Line-buffered JSON-lines access log (one `write_all` per line).
    access_log: Option<Mutex<File>>,
    /// Cached histogram handles — registry lookup paid once at startup,
    /// `record` stays one atomic add on the hot path.
    hist: ServeHistograms,
    /// Provenance captured once at startup (`Provenance::collect` shells
    /// out to git; not a per-request cost).
    provenance: Provenance,
}

/// `&'static` handles into the trace crate's histogram registry.
struct ServeHistograms {
    request_us: &'static Histogram,
    queue_us: &'static Histogram,
    solve_us: &'static Histogram,
    journal_append_us: &'static Histogram,
    parse_us: &'static Histogram,
}

impl ServeHistograms {
    fn new() -> Self {
        ServeHistograms {
            request_us: eatss_trace::histogram("serve.request_us"),
            queue_us: eatss_trace::histogram("serve.queue_us"),
            solve_us: eatss_trace::histogram("serve.solve_us"),
            journal_append_us: eatss_trace::histogram("serve.journal_append_us"),
            parse_us: eatss_trace::histogram("serve.parse_us"),
        }
    }
}

/// Lanes with a request currently in flight, across every in-process
/// server (collection is process-global, so lane bookkeeping must be
/// too: a harvest by one server must not drop another server's
/// still-accumulating events). Held across the harvest so a lane
/// registered mid-harvest cannot be missed.
static ACTIVE_LANES: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());

/// Entries kept in [`Shared::warm`].
const WARM_POOL_CAP: usize = 32;

/// Entries kept in [`Shared::parse_cache`].
const PARSE_CACHE_CAP: usize = 64;

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn admit(&self, job: Job) -> Admission {
        let mut d = self.dispatch.lock().unwrap();
        if self.shutting_down() {
            return Admission::ShuttingDown;
        }
        let (tx, rx) = mpsc::channel();
        if let Some(waiters) = d.in_flight.get_mut(&job.coalesce_key) {
            waiters.push(tx);
            self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            return Admission::Coalesced(rx);
        }
        if d.queue.len() >= self.config.queue_capacity {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            let backlog = (d.queue.len() + d.active) as u64;
            let workers = self.config.workers.max(1) as u64;
            return Admission::Shed {
                retry_after_ms: (backlog * 50 / workers).clamp(50, 5000),
            };
        }
        d.in_flight.insert(job.coalesce_key.clone(), vec![tx]);
        d.queue.push_back(job);
        drop(d);
        self.work_cv.notify_one();
        Admission::Admitted(rx)
    }

    /// Appends one line to the access log (best-effort; a full line per
    /// `write_all` keeps partial lines out of the file on crash).
    fn log_access(&self, fields: Vec<(&str, String)>) {
        let Some(log) = &self.access_log else {
            return;
        };
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut all = vec![("ts_ms", ts_ms.to_string())];
        all.extend(fields);
        let mut line = object_line(&all);
        line.push('\n');
        let mut file = log.lock().unwrap();
        let _ = file.write_all(line.as_bytes());
    }
}

/// Closes a connection's socket from the shutdown path.
enum StreamShutdown {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl StreamShutdown {
    fn close(&self) {
        // Read-half only: a blocked reader wakes with EOF, but a
        // response still in flight for a drained job reaches the
        // client before the connection thread exits.
        match self {
            StreamShutdown::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Read);
            }
            #[cfg(unix)]
            StreamShutdown::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Read);
            }
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn configure(&self, read: Duration, write: Duration) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
        }
    }

    fn closer(&self) -> io::Result<StreamShutdown> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(StreamShutdown::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(StreamShutdown::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Option<Stream>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    // Responses are single small writes; Nagle would
                    // hold them behind delayed ACKs (~40 ms each way).
                    let _ = s.set_nodelay(true);
                    Ok(Some(Stream::Tcp(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Stream::Unix(s))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// The bound address of a running server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// Bound TCP address (with the resolved ephemeral port).
    Tcp(SocketAddr),
    /// Unix socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "{a}"),
            #[cfg(unix)]
            ServerAddr::Unix(p) => write!(f, "{}", p.display()),
        }
    }
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads running for the process
/// lifetime (the daemon binary relies on that); tests should shut down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: ServerAddr,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server listens.
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// The bound TCP address, if TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self.addr {
            ServerAddr::Tcp(a) => Some(a),
            #[cfg(unix)]
            _ => None,
        }
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.counters.snapshot()
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> TileCacheStats {
        self.shared.cache.lock().unwrap().stats()
    }

    /// Journal recovery info from startup.
    pub fn recovery(&self) -> eatss::RecoveryStats {
        self.shared.cache.lock().unwrap().recovery()
    }

    /// Entries warm-started from the journal at startup.
    pub fn replayed(&self) -> u64 {
        self.shared.cache.lock().unwrap().replayed()
    }

    /// Blocks until a client sends the in-band `shutdown` op (or
    /// [`ServerHandle::shutdown`] begins). The daemon binary's main
    /// thread parks here.
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self.shared.shutdown_signal.lock().unwrap();
        while !*requested {
            requested = self.shared.shutdown_cv.wait(requested).unwrap();
        }
    }

    /// Graceful drain: stop accepting, finish the queue (cancelling
    /// in-flight solves if the drain budget runs out — they return
    /// anytime best-so-far), answer every waiter, close connections,
    /// join every thread, flush the journal.
    pub fn shutdown(self) -> ServerStats {
        let shared = &self.shared;
        shared.shutdown.store(true, Ordering::SeqCst);
        *shared.shutdown_signal.lock().unwrap() = true;
        shared.shutdown_cv.notify_all();
        shared.work_cv.notify_all();

        // Wait for the queue to drain within the budget, then cancel.
        let deadline = Instant::now() + shared.config.drain_timeout;
        {
            let mut d = shared.dispatch.lock().unwrap();
            while (!d.queue.is_empty() || d.active > 0) && Instant::now() < deadline {
                let (next, _) = shared
                    .idle_cv
                    .wait_timeout(d, Duration::from_millis(50))
                    .unwrap();
                d = next;
            }
            if !d.queue.is_empty() || d.active > 0 {
                shared.cancel.cancel();
            }
        }
        // Workers exit once the queue is empty; cancellation guarantees
        // in-flight solves reach a checkpoint. Unblock readers.
        for closer in shared.conns.lock().unwrap().iter() {
            closer.close();
        }
        for t in self.threads {
            let _ = t.join();
        }
        let mut cache = shared.cache.lock().unwrap();
        let _ = cache.flush();
        shared.counters.snapshot()
    }
}

/// Starts the daemon.
///
/// # Errors
///
/// Binding, journal-open, or socket-configuration failures.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    // The daemon self-monitors through the process-global trace
    // registry. Joining an already-active session (another in-process
    // server, or a harness that called start_collecting itself) must not
    // wipe it, so collection is only started when off.
    if !eatss_trace::collecting() {
        eatss_trace::start_collecting();
    }

    let mut cache = match &config.cache_dir {
        Some(dir) => {
            PersistentTileCache::open(dir, config.default_arch.clone(), config.journal.clone())?
        }
        None => PersistentTileCache::ephemeral(config.default_arch.clone()),
    };
    // A journal can be reopened already past the garbage threshold
    // (superseded records, corrupt tails): reclaim before serving.
    if let Some(threshold) = config.compact_garbage_ratio {
        if cache.garbage_ratio() > threshold && cache.compact().is_ok() {
            eatss_trace::counter_add("journal.auto_compactions", 1);
        }
    }

    let (listener, addr) = match &config.endpoint {
        Endpoint::Tcp(spec) => {
            let l = TcpListener::bind(spec)?;
            l.set_nonblocking(true)?;
            let addr = ServerAddr::Tcp(l.local_addr()?);
            (Listener::Tcp(l), addr)
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            (Listener::Unix(l), ServerAddr::Unix(path.clone()))
        }
    };

    let access_log = match &config.access_log {
        Some(path) => Some(Mutex::new(
            OpenOptions::new().create(true).append(true).open(path)?,
        )),
        None => None,
    };

    let workers = config.workers.max(1);
    let flight = FlightRecorder::new(config.flight_requests);
    let shared = Arc::new(Shared {
        config,
        cache: Mutex::new(cache),
        dispatch: Mutex::new(Dispatch {
            queue: VecDeque::new(),
            in_flight: HashMap::new(),
            active: 0,
        }),
        work_cv: Condvar::new(),
        idle_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        shutdown_signal: Mutex::new(false),
        shutdown_cv: Condvar::new(),
        cancel: CancelToken::new(),
        counters: Counters::default(),
        conns: Mutex::new(Vec::new()),
        warm: Mutex::new(Vec::new()),
        parse_cache: Mutex::new(Vec::new()),
        flight: Mutex::new(flight),
        access_log,
        hist: ServeHistograms::new(),
        provenance: Provenance::collect(None),
    });

    let mut threads = Vec::with_capacity(workers + 1);
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("eatss-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("eatss-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, listener))?,
        );
    }

    Ok(ServerHandle {
        shared,
        addr,
        threads,
    })
}

fn acceptor_loop(shared: &Arc<Shared>, listener: Listener) {
    // Connection threads are detached: they exit on EOF, fatal protocol
    // error, or shutdown (their socket is closed under them).
    while !shared.shutting_down() {
        match listener.accept() {
            Ok(Some(stream)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                if stream
                    .configure(
                        Duration::from_millis(100),
                        shared.config.write_timeout,
                    )
                    .is_err()
                {
                    continue;
                }
                if let Ok(closer) = stream.closer() {
                    shared.conns.lock().unwrap().push(closer);
                }
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("eatss-conn".to_string())
                    .spawn(move || connection_loop(&shared, stream));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, mut stream: Stream) {
    let mut reader = FrameReader::new(shared.config.max_frame_bytes);
    let mut stalled = Duration::ZERO;
    loop {
        if shared.shutting_down() {
            return;
        }
        match reader.next_frame(&mut stream) {
            Ok(Some(line)) => {
                stalled = Duration::ZERO;
                let keep = handle_line(shared, &mut stream, &line);
                if !keep {
                    return;
                }
            }
            Ok(None) => return, // clean EOF
            Err(ProtocolError::Timeout) => {
                // 100 ms poll tick: only a *mid-frame* stall counts
                // against the read timeout (slow-loris); idle keep-alive
                // connections just keep polling.
                if reader.buffered() {
                    stalled += Duration::from_millis(100);
                    if stalled >= shared.config.read_timeout {
                        shared
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        let _ =
                            write_error(&mut stream, None, &ServeError::from(ProtocolError::Timeout));
                        return;
                    }
                }
            }
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                // Best-effort notice; framing is lost, so close.
                let _ = write_error(&mut stream, None, &ServeError::from(e));
                return;
            }
        }
    }
}

/// Handles one request line. Returns whether the connection should stay
/// open.
fn handle_line(shared: &Arc<Shared>, stream: &mut Stream, line: &str) -> bool {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            let fatal = e.is_fatal();
            let _ = write_error(stream, None, &ServeError::from(e));
            return !fatal;
        }
    };
    let id = request.id.clone();
    match request.op {
        Op::Ping => {
            let _ = write_line(
                stream,
                &with_id(&id, vec![("status", str_field("ok")), ("pong", "true".into())]),
            );
            log_op(shared, "ping", &id, "ok");
            true
        }
        Op::Stats => {
            refresh_gauges(shared);
            let _ = write_line(stream, &stats_response(shared, &id));
            log_op(shared, "stats", &id, "ok");
            true
        }
        Op::Metrics => {
            refresh_gauges(shared);
            let snap = eatss_trace::metrics_snapshot();
            let _ = write_line(
                stream,
                &with_id(
                    &id,
                    vec![
                        ("status", str_field("ok")),
                        ("metrics", snap.to_json()),
                        ("prometheus", str_field(&snap.to_prometheus())),
                    ],
                ),
            );
            log_op(shared, "metrics", &id, "ok");
            true
        }
        Op::Trace => {
            let query = request.trace.expect("trace op carries a query");
            let _ = write_line(stream, &trace_response(shared, &id, query));
            log_op(shared, "trace", &id, "ok");
            true
        }
        Op::Compact => {
            let outcome = shared.cache.lock().unwrap().compact();
            let (line, label) = match outcome {
                Ok(()) => (with_id(&id, vec![("status", str_field("ok"))]), "ok"),
                Err(e) => {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    (error_fields(&id, "io", &e.to_string()), "error")
                }
            };
            let _ = write_line(stream, &line);
            log_op(shared, "compact", &id, label);
            true
        }
        Op::Shutdown => {
            let _ = write_line(stream, &with_id(&id, vec![("status", str_field("ok"))]));
            log_op(shared, "shutdown", &id, "ok");
            *shared.shutdown_signal.lock().unwrap() = true;
            shared.shutdown_cv.notify_all();
            true
        }
        Op::Select => {
            let select = request.select.expect("select op carries a payload");
            handle_select(shared, stream, &id, &select, false)
        }
        Op::Pareto => {
            let select = request.select.expect("pareto op carries a payload");
            handle_select(shared, stream, &id, &select, true)
        }
    }
}

/// Access-log line for a management op (select requests log richer
/// fields from [`handle_select`]).
fn log_op(shared: &Arc<Shared>, op: &str, id: &Option<String>, outcome: &str) {
    let mut fields = vec![("op", str_field(op))];
    if let Some(id) = id {
        fields.push(("id", str_field(id)));
    }
    fields.push(("outcome", str_field(outcome)));
    shared.log_access(fields);
}

/// Answers a `trace` op: the selected flight records merged into one
/// Chrome trace document (embedded raw — `to_chrome_json_compact` emits
/// no newlines, so the response stays one line).
fn trace_response(shared: &Arc<Shared>, id: &Option<String>, query: TraceQuery) -> String {
    refresh_gauges(shared);
    let records = shared.flight.lock().unwrap().select(query.which, query.limit);
    if records.is_empty() {
        return error_fields(id, "empty_flight", "no requests recorded yet");
    }
    let mut requests = Vec::with_capacity(records.len());
    let mut events: Vec<Event> = Vec::new();
    for r in &records {
        let mut fields = vec![
            ("kernel", str_field(&r.kernel)),
            ("lane", r.lane.to_string()),
            ("outcome", str_field(&r.outcome)),
            ("cache", str_field(&r.cache)),
            ("dur_us", r.dur_us.to_string()),
        ];
        if let Some(rid) = &r.id {
            fields.insert(0, ("id", str_field(rid)));
        }
        requests.push(object_line(&fields));
        events.extend(r.events.iter().cloned());
    }
    events.sort_by_key(|e| (e.lane, e.seq));
    let trace = Trace {
        provenance: shared.provenance.clone(),
        events,
        metrics: eatss_trace::metrics_snapshot(),
    };
    with_id(
        id,
        vec![
            ("status", str_field("ok")),
            ("requests", format!("[{}]", requests.join(","))),
            ("trace", trace.to_chrome_json_compact()),
        ],
    )
}

/// Publishes the self-monitoring gauges. Called from the introspection
/// ops (stats/metrics/trace), not per request — gauge freshness tracks
/// observation, and the request hot path stays gauge-free.
fn refresh_gauges(shared: &Arc<Shared>) {
    let (depth, active) = {
        let d = shared.dispatch.lock().unwrap();
        (d.queue.len(), d.active)
    };
    eatss_trace::gauge_set("serve.queue_depth", depth as f64);
    eatss_trace::gauge_set("serve.in_flight", active as f64);
    let s = shared.counters.snapshot();
    let shed_rate = if s.requests > 0 {
        s.shed as f64 / s.requests as f64
    } else {
        0.0
    };
    eatss_trace::gauge_set("serve.shed_rate", shed_rate);
    // Mirror the lifetime request counters (monotone, gauge-typed
    // because the registry's counters are delta-only).
    eatss_trace::gauge_set("serve.requests", s.requests as f64);
    eatss_trace::gauge_set("serve.ok", s.ok as f64);
    eatss_trace::gauge_set("serve.errors", s.errors as f64);
    eatss_trace::gauge_set("serve.shed", s.shed as f64);
    eatss_trace::gauge_set("serve.coalesced", s.coalesced as f64);
    let (garbage, bytes, live, shards) = {
        let cache = shared.cache.lock().unwrap();
        (
            cache.garbage_ratio(),
            cache.journal_bytes(),
            cache.live_bytes(),
            cache.shard_bytes(),
        )
    };
    eatss_trace::gauge_set("journal.garbage_ratio", garbage);
    eatss_trace::gauge_set("journal.bytes", bytes as f64);
    eatss_trace::gauge_set("journal.live_bytes", live as f64);
    eatss_trace::gauge_set(
        "journal.largest_segment_bytes",
        shards.iter().copied().max().unwrap_or(0) as f64,
    );
}

/// What the request wrapper needs to know about how a `select` ended —
/// feeds the latency histogram, the flight recorder, and the access log.
struct SelectSummary {
    outcome: &'static str,
    cache: &'static str,
    deadline_ms: u64,
    queue_us: u64,
    solve_us: u64,
    fell_back: bool,
}

impl Default for SelectSummary {
    fn default() -> Self {
        SelectSummary {
            outcome: "error",
            cache: "none",
            deadline_ms: 0,
            queue_us: 0,
            solve_us: 0,
            fell_back: false,
        }
    }
}

/// The observability wrapper around a `select` request: allocates a
/// process-unique trace lane, runs the request under it, then harvests
/// the lane's events into the flight recorder, records the end-to-end
/// latency histogram, and writes the access-log line. Worker-side spans
/// land on the same lane (the job carries it), and the worker closes
/// them before broadcasting the outcome, so the harvest here sees the
/// complete span tree.
fn handle_select(
    shared: &Arc<Shared>,
    stream: &mut Stream,
    id: &Option<String>,
    select: &SelectRequest,
    pareto: bool,
) -> bool {
    let started = Instant::now();
    let lane = eatss_trace::alloc_lane();
    ACTIVE_LANES.lock().unwrap().insert(lane);
    let mut summary = SelectSummary::default();
    let keep = {
        let _lane = lane_scope(lane);
        handle_select_inner(shared, stream, id, select, pareto, started, lane, &mut summary)
    };
    let dur_us = started.elapsed().as_micros() as u64;
    shared.hist.request_us.record(dur_us);
    // Remove this lane and harvest it under the registry lock: a lane
    // registered mid-harvest stays protected, lanes of abandoned
    // requests do not accumulate in the process-global event buffer.
    let events = {
        let mut active = ACTIVE_LANES.lock().unwrap();
        active.remove(&lane);
        eatss_trace::harvest_lane(lane, |l| active.contains(&l))
    };
    let kernel = select
        .kernel
        .clone()
        .unwrap_or_else(|| "<source>".to_string());
    shared.flight.lock().unwrap().push(RequestRecord {
        id: id.clone(),
        kernel: kernel.clone(),
        lane,
        outcome: summary.outcome.to_string(),
        cache: summary.cache.to_string(),
        dur_us,
        events,
    });
    let mut fields = vec![("op", str_field(if pareto { "pareto" } else { "select" }))];
    if let Some(id) = id {
        fields.push(("id", str_field(id)));
    }
    fields.push(("kernel", str_field(&kernel)));
    fields.push((
        "device",
        str_field(select.arch.as_deref().unwrap_or(&shared.config.default_arch.name)),
    ));
    fields.push(("deadline_ms", summary.deadline_ms.to_string()));
    fields.push(("outcome", str_field(summary.outcome)));
    fields.push(("cache", str_field(summary.cache)));
    fields.push(("queue_us", summary.queue_us.to_string()));
    fields.push(("solve_us", summary.solve_us.to_string()));
    fields.push(("fell_back", summary.fell_back.to_string()));
    fields.push(("latency_us", dur_us.to_string()));
    fields.push(("git_sha", str_field(&shared.provenance.git_sha)));
    shared.log_access(fields);
    keep
}

#[allow(clippy::too_many_arguments)]
fn handle_select_inner(
    shared: &Arc<Shared>,
    stream: &mut Stream,
    id: &Option<String>,
    select: &SelectRequest,
    pareto: bool,
    started: Instant,
    lane: u64,
    summary: &mut SelectSummary,
) -> bool {
    let mut sp = span("serve", "request");
    sp.arg("kernel", select.kernel.clone().unwrap_or_default());

    let (program, sizes, arch) = match resolve_request(shared, select) {
        Ok(parts) => parts,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(stream, id.as_deref(), &ServeError::from(e));
            return true;
        }
    };
    let cfg = select.eatss_config();
    let deadline = select
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.config.default_deadline)
        .min(shared.config.max_deadline);
    summary.deadline_ms = deadline.as_millis() as u64;

    let cache_key = encode_key(&arch, &program, &sizes, &cfg);
    let chaos = select.chaos.clone().filter(|_| shared.config.allow_chaos);

    // Fast path: answer cache hits without touching the queue. Evaluate
    // runs inline off the cached solution (compile + simulate, no
    // solver). Pareto requests span many configurations, so one cached
    // selection cannot answer them — they always go through the queue
    // (their per-config solves still hit the cache worker-side).
    if chaos.is_none() && !pareto {
        let cached = shared.cache.lock().unwrap().lookup_key(&cache_key);
        if let Some(result) = cached {
            let eval = if select.evaluate {
                result
                    .as_ref()
                    .ok()
                    .map(|s| run_eval(shared, &arch, &program, s, &sizes, &cfg))
            } else {
                None
            };
            let verify = if select.verify {
                result
                    .as_ref()
                    .ok()
                    .map(|s| run_verify(shared, &arch, &program, s, &sizes))
            } else {
                None
            };
            let outcome = Outcome::Done {
                result,
                eval,
                verify,
                fell_back: false,
                served_from_cache: true,
                queue_us: 0,
                solve_us: 0,
            };
            let _ =
                write_outcome(shared, stream, id.as_deref(), &outcome, "hit", started, summary);
            return true;
        }
    }

    let mut coalesce_key = cache_key.clone();
    coalesce_key.push(select.evaluate as u8);
    coalesce_key.push(select.verify as u8);
    if let Some(c) = &chaos {
        coalesce_key.extend_from_slice(c.as_bytes());
    }
    if pareto {
        // Op marker: a pareto request must never coalesce with a select
        // of the same configuration (the outcomes have different shapes).
        // Select keys are unchanged, so journaled/legacy behaviour is
        // untouched.
        coalesce_key.push(0xEA);
    }
    let job = Job {
        coalesce_key,
        cache_key,
        arch,
        program,
        sizes,
        cfg,
        deadline,
        evaluate: select.evaluate,
        verify: select.verify,
        pareto,
        chaos,
        lane,
        admitted_at: Instant::now(),
    };
    let (rx, cache_tag) = match shared.admit(job) {
        Admission::Admitted(rx) => (rx, "miss"),
        Admission::Coalesced(rx) => (rx, "coalesced"),
        Admission::Shed { retry_after_ms } => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            summary.outcome = "overloaded";
            let _ = write_line(
                stream,
                &with_id_opt(
                    id.as_deref(),
                    vec![
                        ("status", str_field("overloaded")),
                        ("retry_after_ms", retry_after_ms.to_string()),
                    ],
                ),
            );
            return true;
        }
        Admission::ShuttingDown => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            summary.outcome = "shutting_down";
            let _ = write_error(stream, id.as_deref(), &ServeError::ShuttingDown);
            return true;
        }
    };

    match rx.recv() {
        Ok(outcome) => {
            let _ =
                write_outcome(shared, stream, id.as_deref(), &outcome, cache_tag, started, summary);
            true
        }
        Err(_) => {
            // Worker side dropped without sending — only possible on a
            // hard shutdown race.
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            summary.outcome = "shutting_down";
            let _ = write_error(stream, id.as_deref(), &ServeError::ShuttingDown);
            false
        }
    }
}

fn resolve_request(
    shared: &Arc<Shared>,
    select: &SelectRequest,
) -> Result<(Program, ProblemSizes, GpuArch), ProtocolError> {
    // Any built-in device profile is addressable; the registry is the
    // single source of device truth (`crates/gpusim/profiles/`).
    let arch = match select.arch.as_deref() {
        None => shared.config.default_arch.clone(),
        Some(name) => match eatss_gpusim::DeviceProfile::builtin(name) {
            Some(profile) => profile.into_arch(),
            None => {
                return Err(ProtocolError::BadField {
                    field: "device",
                    expected: "a built-in device profile (\"ga100\", \"xavier\", \"h100\", \"orin\" or \"nano\")",
                })
            }
        },
    };

    if let Some(name) = &select.kernel {
        let bench =
            eatss_kernels::by_name(name).ok_or_else(|| ProtocolError::UnknownKernel(name.clone()))?;
        let program = bench
            .program()
            .map_err(|e| ProtocolError::BadSource(e.to_string()))?;
        let sizes = match &select.sizes {
            SizeSpec::Dataset(d) if d == "xl" => bench.sizes(Dataset::ExtraLarge),
            SizeSpec::Dataset(_) => bench.sizes(Dataset::Standard),
            SizeSpec::Uniform(n) => bench.sizes_uniform(*n),
            SizeSpec::Explicit(pairs) => ProblemSizes::new(pairs.iter().map(|(k, v)| (k.as_str(), *v))),
        };
        return Ok((program, sizes, arch));
    }

    let source = require_source(select)?;
    let t0 = Instant::now();
    let parsed = cached_parse(&shared.parse_cache, source);
    shared
        .hist
        .parse_us
        .record(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
    let (program, cache_hit) = parsed.map_err(|e| ProtocolError::BadSource(e.to_string()))?;
    if cache_hit {
        eatss_trace::counter_add("parse.cache_hits", 1);
    }
    let sizes = match &select.sizes {
        SizeSpec::Uniform(n) => {
            let params = param_names(&program);
            ProblemSizes::uniform(params.iter().map(String::as_str), *n)
        }
        SizeSpec::Explicit(pairs) => ProblemSizes::new(pairs.iter().map(|(k, v)| (k.as_str(), *v))),
        SizeSpec::Dataset(_) => {
            // Named datasets only exist for named benchmarks.
            return Err(ProtocolError::MissingField("sizes"));
        }
    };
    Ok((program, sizes, arch))
}

/// A select request must name either a registered `kernel` or carry
/// inline `source`. The protocol layer lets both be absent (other ops
/// share the envelope), so the resolver enforces it as a typed
/// `bad_field` error instead of panicking the worker.
fn require_source(select: &SelectRequest) -> Result<&str, ProtocolError> {
    select.source.as_deref().ok_or(ProtocolError::BadField {
        field: "source",
        expected: "either `kernel` or `source` on a select request",
    })
}

/// FNV-1a over the raw source bytes — the [`Shared::parse_cache`] key.
fn fnv_source(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Parses `source`, consulting the shared parse cache first. Returns the
/// program and whether it was a cache hit. Parsing happens outside the
/// lock; on a hit the entry's full source is compared so a hash
/// collision degrades to a miss, never a wrong program. Parse errors are
/// not cached — a failing client retrying pays the parse each time, but
/// the cache can never pin a stale error.
fn cached_parse(
    parse_cache: &Mutex<Vec<(u64, String, Program)>>,
    source: &str,
) -> Result<(Program, bool), ParseError> {
    let key = fnv_source(source.as_bytes());
    {
        let mut cache = parse_cache.lock().unwrap();
        if let Some(i) = cache
            .iter()
            .position(|(k, src, _)| *k == key && src == source)
        {
            let entry = cache.remove(i);
            let program = entry.2.clone();
            cache.push(entry);
            return Ok((program, true));
        }
    }
    let program = parse_program(source)?;
    let mut cache = parse_cache.lock().unwrap();
    if !cache
        .iter()
        .any(|(k, src, _)| *k == key && src == source)
    {
        if cache.len() == PARSE_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, source.to_owned(), program.clone()));
    }
    Ok((program, false))
}

fn param_names(program: &Program) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for kernel in &program.kernels {
        for dim in &kernel.dims {
            if let Extent::Param(p) = &dim.extent {
                names.insert(p.clone());
            }
        }
    }
    names
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut d = shared.dispatch.lock().unwrap();
            loop {
                if let Some(job) = d.queue.pop_front() {
                    d.active += 1;
                    break job;
                }
                if shared.shutting_down() {
                    return;
                }
                let (next, _) = shared
                    .work_cv
                    .wait_timeout(d, Duration::from_millis(100))
                    .unwrap();
                d = next;
            }
        };

        let queue_wait_us = job.admitted_at.elapsed().as_micros() as u64;
        shared.hist.queue_us.record(queue_wait_us);
        let solve_started = Instant::now();
        let mut outcome = match catch_unwind(AssertUnwindSafe(|| run_job(shared, &job))) {
            Ok(outcome) => outcome,
            Err(payload) => {
                shared.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                instant("serve", "worker_panic", vec![]);
                Outcome::Panicked(panic_message(payload.as_ref()))
            }
        };
        let worker_us = solve_started.elapsed().as_micros() as u64;
        shared.hist.solve_us.record(worker_us);
        match &mut outcome {
            Outcome::Done {
                queue_us, solve_us, ..
            }
            | Outcome::Pareto {
                queue_us, solve_us, ..
            } => {
                *queue_us = queue_wait_us;
                *solve_us = worker_us;
            }
            Outcome::Panicked(_) => {}
        }

        // Durability before visibility: journal committed results before
        // any waiter hears about them.
        if let Outcome::Done {
            result,
            served_from_cache: false,
            ..
        } = &outcome
        {
            if is_committed(result) {
                let _lane = lane_scope(job.lane);
                let append_started = Instant::now();
                {
                    let _sp = span("serve", "journal_append");
                    let _ = shared
                        .cache
                        .lock()
                        .unwrap()
                        .insert_key(job.cache_key.clone(), result.clone());
                }
                shared
                    .hist
                    .journal_append_us
                    .record(append_started.elapsed().as_micros() as u64);
                maybe_auto_compact(shared);
            }
        }

        let waiters = {
            let mut d = shared.dispatch.lock().unwrap();
            d.active -= 1;
            let waiters = d.in_flight.remove(&job.coalesce_key);
            if d.queue.is_empty() && d.active == 0 {
                shared.idle_cv.notify_all();
            }
            waiters
        };
        if let Some(waiters) = waiters {
            // How many requests one solve answered (1 = no coalescing).
            eatss_trace::gauge_set("serve.coalesce_width", waiters.len() as f64);
            for tx in waiters {
                let _ = tx.send(outcome.clone());
            }
        }
    }
}

/// Garbage-ratio-driven journal compaction: when the appended record
/// pushes the ratio past the configured threshold, compact in place
/// (still on the worker thread, after the append, before the broadcast
/// — admission keeps flowing, only this worker stalls).
fn maybe_auto_compact(shared: &Arc<Shared>) {
    let Some(threshold) = shared.config.compact_garbage_ratio else {
        return;
    };
    let mut cache = shared.cache.lock().unwrap();
    if cache.is_durable() && cache.garbage_ratio() > threshold {
        let _sp = span("serve", "auto_compact");
        if cache.compact().is_ok() {
            eatss_trace::counter_add("journal.auto_compactions", 1);
        }
    }
}

/// Hashes the structural identity a warm-start pool entry is keyed on:
/// architecture plus program shape (sizes and configs are deliberately
/// excluded — those are exactly the axes warm hints transfer across).
fn warm_key(arch: &GpuArch, program: &Program) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    arch.name.hash(&mut h);
    format!("{program:?}").hash(&mut h);
    h.finish()
}

/// Copies the pooled hints for a structure key (empty when absent),
/// refreshing its LRU position.
fn warm_lookup(shared: &Arc<Shared>, key: u64) -> WarmStart {
    let mut pool = shared.warm.lock().unwrap();
    match pool.iter().position(|(k, _)| *k == key) {
        Some(i) => {
            let entry = pool.remove(i);
            let hints = entry.1.clone();
            pool.push(entry);
            hints
        }
        None => WarmStart::new(),
    }
}

/// Publishes a worker's post-solve hints for a structure key
/// (last-writer-wins), evicting the least-recently-used entry past the
/// pool cap.
fn warm_publish(shared: &Arc<Shared>, key: u64, hints: WarmStart) {
    if hints.is_empty() {
        return;
    }
    let mut pool = shared.warm.lock().unwrap();
    if let Some(i) = pool.iter().position(|(k, _)| *k == key) {
        pool.remove(i);
    }
    if pool.len() == WARM_POOL_CAP {
        pool.remove(0);
    }
    pool.push((key, hints));
}

fn is_committed(result: &Result<EatssSolution, EatssError>) -> bool {
    match result {
        Ok(s) => s.provenance == SolutionProvenance::Solved,
        Err(EatssError::Unsatisfiable { .. }) => true,
        Err(_) => false,
    }
}

fn run_job(shared: &Arc<Shared>, job: &Job) -> Outcome {
    let _lane = lane_scope(job.lane);
    let mut sp = span("serve", "solve");
    sp.arg("deadline_ms", job.deadline.as_millis() as i64);

    if let Some(chaos) = &job.chaos {
        if chaos == "panic" {
            panic!("chaos: requested panic");
        }
        if let Some(ms) = chaos.strip_prefix("sleep:").and_then(|s| s.parse::<u64>().ok()) {
            std::thread::sleep(Duration::from_millis(ms.min(60_000)));
        }
    }

    if job.pareto {
        return run_pareto(shared, job);
    }

    // A racing identical request may have committed between this job's
    // admission (cache miss) and now; serve the committed entry.
    if let Some(result) = shared.cache.lock().unwrap().lookup_key(&job.cache_key) {
        let eval = if job.evaluate {
            result
                .as_ref()
                .ok()
                .map(|s| run_eval(shared, &job.arch, &job.program, s, &job.sizes, &job.cfg))
        } else {
            None
        };
        let verify = if job.verify {
            result
                .as_ref()
                .ok()
                .map(|s| run_verify(shared, &job.arch, &job.program, s, &job.sizes))
        } else {
            None
        };
        return Outcome::Done {
            result,
            eval,
            verify,
            fell_back: false,
            served_from_cache: true,
            queue_us: 0,
            solve_us: 0,
        };
    }

    let solver_config = SolverConfig {
        deadline: Some(job.deadline),
        cancel: Some(shared.cancel.clone()),
        ..SolverConfig::default()
    };
    // Pull the warm-start hints pooled for this program structure; solve
    // against a local copy (workers must not hold the pool lock while
    // solving), then publish the updated hints back.
    let structure = warm_key(&job.arch, &job.program);
    let mut hints = warm_lookup(shared, structure);
    let solved = ModelGenerator::new(&job.arch, job.cfg.clone())
        .with_solver_config(solver_config)
        .build(&job.program, Some(&job.sizes))
        .and_then(|model| model.solve_warm(&mut hints));
    if let Ok(s) = &solved {
        if s.stats.warm_seeds > 0 {
            shared.counters.warm_seeded.fetch_add(1, Ordering::Relaxed);
        }
    }
    warm_publish(shared, structure, hints);

    // The anytime ladder's last rung: budget exhausted with nothing
    // feasible found ⇒ PPCG's default 32^d tiling, marked as fallback.
    let (result, fell_back) = match solved {
        Err(EatssError::Exhausted { .. }) => {
            shared.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            (Ok(EatssSolution::ppcg_default(job.program.max_depth())), true)
        }
        other => (other, false),
    };

    let eval = if job.evaluate {
        result
            .as_ref()
            .ok()
            .map(|s| run_eval(shared, &job.arch, &job.program, s, &job.sizes, &job.cfg))
    } else {
        None
    };
    let verify = if job.verify {
        result
            .as_ref()
            .ok()
            .map(|s| run_verify(shared, &job.arch, &job.program, s, &job.sizes))
    } else {
        None
    };

    Outcome::Done {
        result,
        eval,
        verify,
        fell_back,
        served_from_cache: false,
        queue_us: 0,
        solve_us: 0,
    }
}

/// Answers an `{"op":"pareto"}` job: sweeps the §V-B splits at the
/// requested warp fraction (both thread-block cap readings, default
/// precision) on the requested device, journals every fully-solved
/// configuration under its own structural cache key — so later `select`
/// requests for those configurations are warm, and the front survives
/// `kill -9` exactly like single selections — and returns the
/// non-dominated energy-vs-performance front.
fn run_pareto(shared: &Arc<Shared>, job: &Job) -> Outcome {
    let mut sp = span("serve", "pareto");
    sp.arg("device", job.arch.name.clone());
    let eatss = Eatss::new(job.arch.clone());
    // One rung, the job's deadline per configuration: the daemon's
    // latency contract is per-request, not per-campaign — a point that
    // exhausts its slice degrades to the measured 32^d fallback instead
    // of stalling the worker.
    let options = eatss::SweepOptions {
        attempts: vec![eatss::SolveAttempt {
            node_limit: 2_000_000,
            deadline: Some(job.deadline),
            coarsen: false,
        }],
        fallback_to_default: true,
        jobs: 1,
        warm_start: true,
    };
    let outcome = match eatss::sweep::run_with(
        &eatss,
        &job.program,
        &job.sizes,
        &eatss::sweep::PAPER_SPLITS,
        &[job.cfg.warp_fraction],
        &options,
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            return Outcome::Pareto {
                result: Err(e.to_string()),
                queue_us: 0,
                solve_us: 0,
            }
        }
    };

    // Durability before visibility, per configuration: journal each
    // fully-solved point before any waiter hears about the front.
    {
        let mut cache = shared.cache.lock().unwrap();
        for point in &outcome.points {
            if point.solution.provenance == SolutionProvenance::Solved {
                let key = encode_key(&job.arch, &job.program, &job.sizes, &point.config);
                let _ = cache.insert_key(key, Ok(point.solution.clone()));
            }
        }
    }
    maybe_auto_compact(shared);

    let front_points = outcome.pareto_front();
    let verify = if job.verify {
        Some(run_verify_front(&job.arch, &job.program, &front_points, &job.sizes))
    } else {
        None
    };
    let front = front_points
        .iter()
        .map(|p| ParetoEntry {
            tiles: p.solution.tiles.sizes().to_vec(),
            split: p.config.split_factor,
            warp_fraction: p.config.warp_fraction,
            strict_cap: p.config.cap == eatss::ThreadBlockCap::Strict,
            provenance: p.solution.provenance.to_string(),
            energy_j: p.report.energy_j,
            gflops: p.report.gflops,
            ppw: p.report.ppw,
            time_ms: p.report.time_s * 1000.0,
        })
        .collect();
    Outcome::Pareto {
        result: Ok(ParetoReport {
            device: job.arch.name.clone(),
            front,
            points: outcome.points.len(),
            infeasible: outcome.infeasible.len(),
            verify,
        }),
        queue_us: 0,
        solve_us: 0,
    }
}

/// Verifies every front point's tiles bitwise against the reference
/// interpreter in one batched oracle call (same shrink rule and seed as
/// `verify: true` selections). Unlike [`run_verify`], every config here
/// is a real answer the daemon is returning, so all of them must map and
/// agree.
fn run_verify_front(
    arch: &GpuArch,
    program: &Program,
    front: &[&eatss::SweepPoint],
    sizes: &ProblemSizes,
) -> Result<VerifySummary, String> {
    if front.is_empty() {
        return Ok(VerifySummary {
            configs: 0,
            points: 0,
        });
    }
    let shrunk = verify_sizes(program, sizes, VERIFY_SPACE_CAP, VERIFY_TIME_CAP);
    let configs: Vec<_> = front.iter().map(|p| p.solution.tiles.clone()).collect();
    let verdicts = eatss_ppcg::verify_batch(
        program,
        &configs,
        arch,
        &shrunk,
        &eatss_ppcg::OracleOptions::default(),
        VERIFY_SEED,
    );
    let mut summary = VerifySummary {
        configs: 0,
        points: 0,
    };
    for verdict in verdicts {
        match verdict {
            Ok(report) => {
                summary.configs += 1;
                summary.points += report.points;
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(summary)
}

fn run_eval(
    shared: &Arc<Shared>,
    arch: &GpuArch,
    program: &Program,
    solution: &EatssSolution,
    sizes: &ProblemSizes,
    cfg: &eatss::EatssConfig,
) -> Result<SimReport, String> {
    let gpu = match &shared.config.fault_plan {
        Some(plan) => Gpu::with_faults(arch.clone(), plan.clone()),
        None => Gpu::new(arch.clone()),
    };
    Eatss::with_gpu(gpu)
        .evaluate(program, &solution.tiles, sizes, cfg)
        .map_err(|e: EvaluateError| e.to_string())
}

/// Verifies the selected tiles bitwise against the reference interpreter
/// through the batched differential oracle: the selection and the `32^d`
/// PPCG default (the daemon's fallback answer) go through one
/// [`eatss_ppcg::verify_batch`] call at shrunk verification sizes, so the
/// reference interpretation and the shared emulator plans are paid once
/// per request, not per config. Only the selected tiles' verdict gates
/// the response; an unmappable fallback config is not an error.
fn run_verify(
    shared: &Arc<Shared>,
    arch: &GpuArch,
    program: &Program,
    solution: &EatssSolution,
    sizes: &ProblemSizes,
) -> Result<VerifySummary, String> {
    let _ = shared;
    let shrunk = verify_sizes(program, sizes, VERIFY_SPACE_CAP, VERIFY_TIME_CAP);
    let configs = vec![
        solution.tiles.clone(),
        eatss_affine::tiling::TileConfig::ppcg_default(program.max_depth()),
    ];
    let verdicts = eatss_ppcg::verify_batch(
        program,
        &configs,
        arch,
        &shrunk,
        &eatss_ppcg::OracleOptions::default(),
        VERIFY_SEED,
    );
    let mut summary = VerifySummary {
        configs: 0,
        points: 0,
    };
    for (i, verdict) in verdicts.into_iter().enumerate() {
        match verdict {
            Ok(report) => {
                summary.configs += 1;
                summary.points += report.points;
            }
            // The fallback config failing to *map* is not a finding;
            // the selected tiles (index 0) must map and agree.
            Err(eatss_ppcg::OracleError::Compile(e)) if i > 0 => {
                let _ = e;
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(summary)
}

/// Spatial / time-loop caps for `verify: true` oracle runs — the same
/// shrink rule the sweep uses, sized so verification stays interactive.
const VERIFY_SPACE_CAP: i64 = 17;
const VERIFY_TIME_CAP: i64 = 3;
/// Store seed for `verify: true` oracle runs.
const VERIFY_SEED: u64 = 0xEA75_50AC;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

fn write_outcome(
    shared: &Arc<Shared>,
    stream: &mut Stream,
    id: Option<&str>,
    outcome: &Outcome,
    cache_tag: &str,
    started: Instant,
    summary: &mut SelectSummary,
) -> io::Result<()> {
    summary.cache = match cache_tag {
        "hit" => "hit",
        "coalesced" => "coalesced",
        _ => "miss",
    };
    let line = match outcome {
        Outcome::Panicked(message) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            summary.outcome = "error";
            error_fields_opt(id, "worker_panic", message)
        }
        Outcome::Pareto {
            result,
            queue_us,
            solve_us,
        } => {
            summary.queue_us = *queue_us;
            summary.solve_us = *solve_us;
            match result {
                Ok(report) => {
                    shared.counters.ok.fetch_add(1, Ordering::Relaxed);
                    summary.outcome = "ok";
                    pareto_fields(shared, id, report, cache_tag, started)
                }
                Err(message) => {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    summary.outcome = "error";
                    error_fields_opt(id, "pareto", message)
                }
            }
        }
        Outcome::Done {
            result,
            eval,
            verify,
            fell_back,
            queue_us,
            solve_us,
            ..
        } => {
            summary.queue_us = *queue_us;
            summary.solve_us = *solve_us;
            summary.fell_back = *fell_back;
            match result {
            Ok(solution) => {
                shared.counters.ok.fetch_add(1, Ordering::Relaxed);
                summary.outcome = "ok";
                let mut fields = vec![
                    ("status", str_field("ok")),
                    (
                        "tiles",
                        format!(
                            "[{}]",
                            solution
                                .tiles
                                .sizes()
                                .iter()
                                .map(i64::to_string)
                                .collect::<Vec<_>>()
                                .join(",")
                        ),
                    ),
                    ("objective", solution.objective.to_string()),
                    ("provenance", str_field(&solution.provenance.to_string())),
                    ("optimal", solution.optimal.to_string()),
                    ("solver_calls", solution.solver_calls.to_string()),
                    (
                        "solve_ms",
                        number(solution.solve_time.as_secs_f64() * 1000.0),
                    ),
                    ("cache", str_field(cache_tag)),
                    ("fell_back", fell_back.to_string()),
                    (
                        "latency_ms",
                        number(started.elapsed().as_secs_f64() * 1000.0),
                    ),
                ];
                match eval {
                    Some(Ok(report)) => {
                        fields.push((
                            "eval",
                            object_line(&[
                                ("time_ms", number(report.time_s * 1000.0)),
                                ("power_w", number(report.avg_power_w)),
                                ("energy_j", number(report.energy_j)),
                                ("gflops", number(report.gflops)),
                                ("ppw", number(report.ppw)),
                            ]),
                        ));
                    }
                    Some(Err(message)) => {
                        fields.push((
                            "eval_error",
                            object_line(&[
                                ("kind", str_field("measure")),
                                ("message", str_field(message)),
                            ]),
                        ));
                    }
                    None => {}
                }
                match verify {
                    Some(Ok(summary)) => {
                        shared.counters.verified.fetch_add(1, Ordering::Relaxed);
                        fields.push((
                            "verify",
                            object_line(&[
                                ("configs", summary.configs.to_string()),
                                ("points", summary.points.to_string()),
                            ]),
                        ));
                    }
                    Some(Err(message)) => {
                        fields.push((
                            "verify_error",
                            object_line(&[
                                ("kind", str_field("oracle")),
                                ("message", str_field(message)),
                            ]),
                        ));
                    }
                    None => {}
                }
                with_id_opt(id, fields)
            }
            Err(EatssError::Unsatisfiable { reason }) => {
                shared.counters.infeasible.fetch_add(1, Ordering::Relaxed);
                summary.outcome = "infeasible";
                with_id_opt(
                    id,
                    vec![
                        ("status", str_field("infeasible")),
                        ("reason", str_field(reason)),
                        ("cache", str_field(cache_tag)),
                        (
                            "latency_ms",
                            number(started.elapsed().as_secs_f64() * 1000.0),
                        ),
                    ],
                )
            }
            Err(e) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                summary.outcome = "error";
                let serve_error =
                    ServeError::Pipeline(eatss::PipelineError::from_eatss(e.clone(), "serve"));
                error_line(id, &serve_error)
            }
        }
        }
    };
    write_line(stream, &line)
}

/// Renders an ok pareto response: the device, the front as an ordered
/// JSON array, and the sweep's bookkeeping counts.
fn pareto_fields(
    shared: &Arc<Shared>,
    id: Option<&str>,
    report: &ParetoReport,
    cache_tag: &str,
    started: Instant,
) -> String {
    let front: Vec<String> = report
        .front
        .iter()
        .map(|e| {
            object_line(&[
                (
                    "tiles",
                    format!(
                        "[{}]",
                        e.tiles
                            .iter()
                            .map(i64::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                ),
                ("split", number(e.split)),
                ("warp_frac", number(e.warp_fraction)),
                ("strict_cap", e.strict_cap.to_string()),
                ("provenance", str_field(&e.provenance)),
                ("energy_j", number(e.energy_j)),
                ("gflops", number(e.gflops)),
                ("ppw", number(e.ppw)),
                ("time_ms", number(e.time_ms)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("status", str_field("ok")),
        ("device", str_field(&report.device)),
        ("front", format!("[{}]", front.join(","))),
        ("points", report.points.to_string()),
        ("infeasible", report.infeasible.to_string()),
        ("cache", str_field(cache_tag)),
        (
            "latency_ms",
            number(started.elapsed().as_secs_f64() * 1000.0),
        ),
    ];
    match &report.verify {
        Some(Ok(summary)) => {
            shared.counters.verified.fetch_add(1, Ordering::Relaxed);
            fields.push((
                "verify",
                object_line(&[
                    ("configs", summary.configs.to_string()),
                    ("points", summary.points.to_string()),
                ]),
            ));
        }
        Some(Err(message)) => {
            fields.push((
                "verify_error",
                object_line(&[
                    ("kind", str_field("oracle")),
                    ("message", str_field(message)),
                ]),
            ));
        }
        None => {}
    }
    with_id_opt(id, fields)
}

fn stats_response(shared: &Arc<Shared>, id: &Option<String>) -> String {
    let s = shared.counters.snapshot();
    let (cache_stats, recovery, replayed, persisted, journal_bytes, durable) = {
        let cache = shared.cache.lock().unwrap();
        (
            cache.stats(),
            cache.recovery(),
            cache.replayed(),
            cache.persisted(),
            cache.journal_bytes(),
            cache.is_durable(),
        )
    };
    with_id(
        id,
        vec![
            ("status", str_field("ok")),
            (
                "server",
                object_line(&[
                    ("connections", s.connections.to_string()),
                    ("requests", s.requests.to_string()),
                    ("ok", s.ok.to_string()),
                    ("infeasible", s.infeasible.to_string()),
                    ("errors", s.errors.to_string()),
                    ("shed", s.shed.to_string()),
                    ("coalesced", s.coalesced.to_string()),
                    ("protocol_errors", s.protocol_errors.to_string()),
                    ("panics_caught", s.panics_caught.to_string()),
                    ("fallbacks", s.fallbacks.to_string()),
                    ("warm_seeded", s.warm_seeded.to_string()),
                    ("verified", s.verified.to_string()),
                ]),
            ),
            (
                "cache",
                object_line(&[
                    ("hits", cache_stats.hits.to_string()),
                    ("misses", cache_stats.misses.to_string()),
                    ("infeasible", cache_stats.infeasible.to_string()),
                    ("errors", cache_stats.errors.to_string()),
                    ("replayed", replayed.to_string()),
                    ("persisted", persisted.to_string()),
                    ("journal_bytes", journal_bytes.to_string()),
                    ("durable", durable.to_string()),
                ]),
            ),
            (
                "recovery",
                object_line(&[
                    ("records_recovered", recovery.records_recovered.to_string()),
                    (
                        "corrupt_records_skipped",
                        recovery.corrupt_records_skipped.to_string(),
                    ),
                    (
                        "torn_tails_truncated",
                        recovery.torn_tails_truncated.to_string(),
                    ),
                    ("bytes_discarded", recovery.bytes_discarded.to_string()),
                ]),
            ),
        ],
    )
}

fn with_id(id: &Option<String>, fields: Vec<(&str, String)>) -> String {
    with_id_opt(id.as_deref(), fields)
}

fn with_id_opt(id: Option<&str>, mut fields: Vec<(&str, String)>) -> String {
    let mut all = vec![("v", PROTOCOL_VERSION.to_string())];
    if let Some(id) = id {
        all.push(("id", str_field(id)));
    }
    all.append(&mut fields);
    object_line(&all)
}

fn error_fields(id: &Option<String>, kind: &str, message: &str) -> String {
    error_fields_opt(id.as_deref(), kind, message)
}

fn error_fields_opt(id: Option<&str>, kind: &str, message: &str) -> String {
    with_id_opt(
        id,
        vec![
            ("status", str_field("error")),
            (
                "error",
                object_line(&[
                    ("kind", str_field(kind)),
                    ("message", str_field(message)),
                ]),
            ),
        ],
    )
}

fn error_line(id: Option<&str>, error: &ServeError) -> String {
    error_fields_opt(id, error.kind(), &error.to_string())
}

fn write_error(stream: &mut Stream, id: Option<&str>, error: &ServeError) -> io::Result<()> {
    write_line(stream, &error_line(id, error))
}

fn write_line(stream: &mut Stream, line: &str) -> io::Result<()> {
    // One write per frame: a separate 1-byte newline write would be a
    // second small packet Nagle delays behind the peer's ACK.
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    stream.write_all(framed.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select_with(kernel: Option<&str>, source: Option<&str>) -> SelectRequest {
        SelectRequest {
            kernel: kernel.map(str::to_owned),
            source: source.map(str::to_owned),
            sizes: SizeSpec::Uniform(64),
            split: 0.5,
            warp_fraction: 1.0,
            fp32: false,
            strict_cap: false,
            arch: None,
            deadline_ms: None,
            evaluate: false,
            verify: false,
            chaos: None,
        }
    }

    const NEST: &str = "kernel k(N) { for (i: N) A[i] = B[i] + 1; }";

    #[test]
    fn require_source_is_a_typed_error_not_a_panic() {
        let select = select_with(None, None);
        match require_source(&select) {
            Err(ProtocolError::BadField { field, .. }) => assert_eq!(field, "source"),
            other => panic!("expected bad_field, got {other:?}"),
        }
        assert_eq!(require_source(&select_with(None, Some(NEST))), Ok(NEST));
    }

    #[test]
    fn cached_parse_hits_on_repeat_and_preserves_the_program() {
        let cache = Mutex::new(Vec::new());
        let (first, hit) = cached_parse(&cache, NEST).unwrap();
        assert!(!hit, "first parse must be a miss");
        let (second, hit) = cached_parse(&cache, NEST).unwrap();
        assert!(hit, "identical source must hit");
        assert_eq!(first, second);
        assert_eq!(first, parse_program(NEST).unwrap());
        assert_eq!(cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn cached_parse_does_not_cache_errors() {
        let cache = Mutex::new(Vec::new());
        assert!(cached_parse(&cache, "kernel oops").is_err());
        assert!(cache.lock().unwrap().is_empty());
        assert!(cached_parse(&cache, "kernel oops").is_err());
    }

    #[test]
    fn cached_parse_evicts_least_recently_used_at_cap() {
        let cache = Mutex::new(Vec::new());
        let sources: Vec<String> = (0..=PARSE_CACHE_CAP)
            .map(|i| format!("kernel k{i}(N) {{ for (i: N) A[i] = B[i]; }}"))
            .collect();
        // Fill to cap, then refresh entry 0 so entry 1 is the LRU victim.
        for src in &sources[..PARSE_CACHE_CAP] {
            cached_parse(&cache, src).unwrap();
        }
        assert!(cached_parse(&cache, &sources[0]).unwrap().1);
        cached_parse(&cache, &sources[PARSE_CACHE_CAP]).unwrap();
        assert_eq!(cache.lock().unwrap().len(), PARSE_CACHE_CAP);
        assert!(!cached_parse(&cache, &sources[1]).unwrap().1, "LRU entry must have been evicted");
        assert!(cached_parse(&cache, &sources[0]).unwrap().1, "refreshed entry must survive");
    }

    #[test]
    fn fnv_distinguishes_realistic_sources() {
        let a = fnv_source(NEST.as_bytes());
        let b = fnv_source(b"kernel k(N) { for (i: N) A[i] = B[i] + 2; }");
        assert_ne!(a, b);
        assert_eq!(a, fnv_source(NEST.as_bytes()));
    }
}
