//! A small blocking client for the daemon — used by the CLI, the tests,
//! and the `bench_serve` chaos harness. One request per call, parsed
//! responses, explicit timeouts.

use crate::protocol::{object_line, str_field, FrameReader, ProtocolError};
use eatss_trace::json::{number, Json};
use std::io::{self, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl io::Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => io::Read::read(s, buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => io::Read::read(s, buf),
        }
    }
}

impl io::Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A connected protocol client.
pub struct Client {
    stream: ClientStream,
    reader: FrameReader,
}

impl Client {
    /// Connects over TCP with a 30 s response timeout.
    ///
    /// # Errors
    ///
    /// Connection or socket-option failures.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        Client::connect_tcp_timeout(addr, Duration::from_secs(30))
    }

    /// Connects over TCP with an explicit response timeout.
    ///
    /// # Errors
    ///
    /// Connection or socket-option failures.
    pub fn connect_tcp_timeout(addr: &str, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client {
            stream: ClientStream::Tcp(stream),
            reader: FrameReader::new(1 << 20),
        })
    }

    /// Connects to a unix socket.
    ///
    /// # Errors
    ///
    /// Connection or socket-option failures.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream: ClientStream::Unix(stream),
            reader: FrameReader::new(1 << 20),
        })
    }

    /// Sends one raw line and reads one response line, parsed.
    ///
    /// # Errors
    ///
    /// Transport failures ([`ProtocolError::Io`]/`Timeout`/
    /// `ConnectionClosed`) or an unparseable response.
    pub fn request_line(&mut self, line: &str) -> Result<Json, ProtocolError> {
        // Frame in one write: a trailing 1-byte newline write would sit
        // in Nagle's buffer until the server ACKs the first packet.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.stream
            .write_all(framed.as_bytes())
            .and_then(|()| self.stream.flush())
            .map_err(io_to_protocol)?;
        self.read_response()
    }

    /// Reads the next response line without sending anything — for
    /// pipelined or chaos-mode use.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn read_response(&mut self) -> Result<Json, ProtocolError> {
        let line = self
            .reader
            .next_frame(&mut self.stream)?
            .ok_or(ProtocolError::ConnectionClosed)?;
        Json::parse(&line).map_err(ProtocolError::BadJson)
    }

    /// Writes raw bytes without framing — chaos harness only.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn write_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Convenience: a `select` request for a named benchmark.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn select(&mut self, req: &SelectArgs) -> Result<Json, ProtocolError> {
        self.request_line(&req.to_line())
    }

    /// Convenience: the `stats` op.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn stats(&mut self) -> Result<Json, ProtocolError> {
        self.request_line(r#"{"op": "stats"}"#)
    }

    /// Convenience: the `ping` op.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn ping(&mut self) -> Result<Json, ProtocolError> {
        self.request_line(r#"{"op": "ping"}"#)
    }

    /// Convenience: the `metrics` op (full registry as JSON +
    /// Prometheus text).
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn metrics(&mut self) -> Result<Json, ProtocolError> {
        self.request_line(r#"{"op": "metrics"}"#)
    }

    /// Convenience: the `trace` op — exports flight-recorder records
    /// (`which` ∈ recent/slowest/errors) as a Chrome trace document
    /// under the response's `trace` key.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn trace_export(&mut self, which: &str, limit: usize) -> Result<Json, ProtocolError> {
        let line = object_line(&[
            ("op", str_field("trace")),
            ("which", str_field(which)),
            ("limit", limit.to_string()),
        ]);
        self.request_line(&line)
    }

    /// Convenience: the in-band `shutdown` op.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request_line`].
    pub fn shutdown(&mut self) -> Result<Json, ProtocolError> {
        self.request_line(r#"{"op": "shutdown"}"#)
    }
}

fn io_to_protocol(e: io::Error) -> ProtocolError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ProtocolError::Timeout,
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::UnexpectedEof => ProtocolError::ConnectionClosed,
        _ => ProtocolError::Io(e.to_string()),
    }
}

/// Builder for a `select` request line.
#[derive(Debug, Clone, Default)]
pub struct SelectArgs {
    /// Correlation id.
    pub id: Option<String>,
    /// Benchmark name (exclusive with `source`).
    pub kernel: Option<String>,
    /// Inline DSL source.
    pub source: Option<String>,
    /// Uniform problem size (`n`).
    pub n: Option<i64>,
    /// Named dataset (`"standard"` / `"xl"`).
    pub dataset: Option<String>,
    /// Split factor.
    pub split: Option<f64>,
    /// Warp fraction.
    pub warp_frac: Option<f64>,
    /// FP32 precision.
    pub fp32: bool,
    /// Strict thread-block cap.
    pub strict_cap: bool,
    /// Device profile name (rendered as the `device` wire field).
    pub arch: Option<String>,
    /// Ask for the configuration sweep's Pareto front
    /// (`{"op":"pareto"}`) instead of a single selection.
    pub pareto: bool,
    /// Per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Also measure the selection.
    pub evaluate: bool,
    /// Also verify the selection against the reference interpreter.
    pub verify: bool,
    /// Chaos directive (server must allow chaos).
    pub chaos: Option<String>,
}

impl SelectArgs {
    /// A request for a named benchmark at standard sizes.
    pub fn kernel(name: &str) -> Self {
        SelectArgs {
            kernel: Some(name.to_string()),
            ..SelectArgs::default()
        }
    }

    /// Renders the request line.
    pub fn to_line(&self) -> String {
        let op = if self.pareto { "pareto" } else { "select" };
        let mut fields: Vec<(&str, String)> = vec![("op", str_field(op))];
        if let Some(id) = &self.id {
            fields.push(("id", str_field(id)));
        }
        if let Some(k) = &self.kernel {
            fields.push(("kernel", str_field(k)));
        }
        if let Some(s) = &self.source {
            fields.push(("source", str_field(s)));
        }
        if let Some(n) = self.n {
            fields.push(("n", n.to_string()));
        }
        if let Some(d) = &self.dataset {
            fields.push(("dataset", str_field(d)));
        }
        if let Some(s) = self.split {
            fields.push(("split", number(s)));
        }
        if let Some(w) = self.warp_frac {
            fields.push(("warp_frac", number(w)));
        }
        if self.fp32 {
            fields.push(("fp32", "true".to_string()));
        }
        if self.strict_cap {
            fields.push(("strict_cap", "true".to_string()));
        }
        if let Some(a) = &self.arch {
            fields.push(("device", str_field(a)));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", ms.to_string()));
        }
        if self.evaluate {
            fields.push(("evaluate", "true".to_string()));
        }
        if self.verify {
            fields.push(("verify", "true".to_string()));
        }
        if let Some(c) = &self.chaos {
            fields.push(("chaos", str_field(c)));
        }
        object_line(&fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    #[test]
    fn select_args_render_parseable_requests() {
        let mut args = SelectArgs::kernel("gemm");
        args.id = Some("x".into());
        args.n = Some(512);
        args.split = Some(0.67);
        args.deadline_ms = Some(100);
        args.evaluate = true;
        args.verify = true;
        let parsed = parse_request(&args.to_line()).unwrap();
        assert_eq!(parsed.id.as_deref(), Some("x"));
        let s = parsed.select.unwrap();
        assert_eq!(s.kernel.as_deref(), Some("gemm"));
        assert_eq!(s.deadline_ms, Some(100));
        assert!(s.evaluate);
        assert!(s.verify);
    }
}
