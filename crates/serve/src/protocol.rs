//! The wire protocol: JSON-lines over a byte stream.
//!
//! One request per line, one response per line, UTF-8, `\n`-terminated.
//! The grammar is documented in DESIGN.md §12; parsing reuses
//! [`eatss_trace::json`] so the daemon carries no protocol dependency the
//! tracer does not already have.
//!
//! Every malformed input maps to a typed [`ProtocolError`] — the server
//! turns recoverable ones (bad JSON, missing fields, unknown kernels)
//! into error *responses* and keeps the connection, and fatal ones
//! (oversized frames, timeouts, EOF) into a best-effort error response
//! followed by a close. Nothing a client sends can panic the daemon.

use crate::flight::TraceWhich;
use eatss::{EatssConfig, Precision, ThreadBlockCap};
use eatss_trace::json::{escape, Json};
use std::fmt;
use std::io::{self, Read};

/// Protocol version, echoed in every response.
pub const PROTOCOL_VERSION: u64 = 1;

/// Everything that can go wrong between the socket and a valid
/// [`Request`]. The daemon-side extension of the core crate's
/// `PipelineError` taxonomy: those classify pipeline *stage* failures,
/// these classify request *transport/shape* failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A line exceeded the configured frame limit.
    FrameTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The peer closed the stream mid-frame.
    ConnectionClosed,
    /// The socket read or write timed out (slow-loris defence).
    Timeout,
    /// The line was not valid JSON.
    BadJson(String),
    /// The line parsed but was not a JSON object.
    NotAnObject,
    /// A required field was absent.
    MissingField(&'static str),
    /// A field had the wrong type or an out-of-range value.
    BadField {
        /// Which field.
        field: &'static str,
        /// What was expected.
        expected: &'static str,
    },
    /// `kernel` named no known benchmark.
    UnknownKernel(String),
    /// `source` did not parse as a kernel program.
    BadSource(String),
    /// `op` named no known operation.
    UnknownOp(String),
    /// Underlying I/O failure.
    Io(String),
}

impl ProtocolError {
    /// Stable wire identifier for the error class.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolError::FrameTooLarge { .. } => "frame_too_large",
            ProtocolError::ConnectionClosed => "connection_closed",
            ProtocolError::Timeout => "timeout",
            ProtocolError::BadJson(_) => "bad_json",
            ProtocolError::NotAnObject => "not_an_object",
            ProtocolError::MissingField(_) => "missing_field",
            ProtocolError::BadField { .. } => "bad_field",
            ProtocolError::UnknownKernel(_) => "unknown_kernel",
            ProtocolError::BadSource(_) => "bad_source",
            ProtocolError::UnknownOp(_) => "unknown_op",
            ProtocolError::Io(_) => "io",
        }
    }

    /// Whether the connection can keep serving after this error.
    /// Frame-boundary loss (oversize, timeout, EOF, I/O) is fatal; a
    /// well-framed but senseless line is not.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            ProtocolError::FrameTooLarge { .. }
                | ProtocolError::ConnectionClosed
                | ProtocolError::Timeout
                | ProtocolError::Io(_)
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::FrameTooLarge { limit } => {
                write!(f, "frame exceeds {limit} byte limit")
            }
            ProtocolError::ConnectionClosed => write!(f, "connection closed mid-frame"),
            ProtocolError::Timeout => write!(f, "socket timeout"),
            ProtocolError::BadJson(e) => write!(f, "invalid JSON: {e}"),
            ProtocolError::NotAnObject => write!(f, "request must be a JSON object"),
            ProtocolError::MissingField(field) => write!(f, "missing field '{field}'"),
            ProtocolError::BadField { field, expected } => {
                write!(f, "field '{field}': expected {expected}")
            }
            ProtocolError::UnknownKernel(k) => write!(f, "unknown kernel '{k}'"),
            ProtocolError::BadSource(e) => write!(f, "source does not parse: {e}"),
            ProtocolError::UnknownOp(op) => write!(f, "unknown op '{op}'"),
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The operation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Solve (or serve from cache) a tile selection.
    Select,
    /// Sweep the paper's configuration grid on the requested device and
    /// return the energy-vs-performance Pareto front.
    Pareto,
    /// Liveness probe.
    Ping,
    /// Server + cache counters.
    Stats,
    /// Full metrics registry (counters, gauges, histograms) as JSON and
    /// Prometheus-style text.
    Metrics,
    /// Flight-recorder export: Chrome `trace_events` for recorded
    /// requests.
    Trace,
    /// Compact the cache journal.
    Compact,
    /// Graceful shutdown (drain, flush, exit).
    Shutdown,
}

/// Payload of an [`Op::Trace`] request: which ring, how many records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceQuery {
    /// Which flight-recorder ring to export.
    pub which: TraceWhich,
    /// How many records (server caps at [`TRACE_LIMIT_CAP`]).
    pub limit: usize,
}

/// Upper bound on `limit` in a `trace` request.
pub const TRACE_LIMIT_CAP: usize = 32;

/// How the request binds problem sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeSpec {
    /// A named PolyBench dataset: `"standard"` or `"xl"`.
    Dataset(String),
    /// Every parameter bound to one value.
    Uniform(i64),
    /// Explicit `{param: value}` bindings.
    Explicit(Vec<(String, i64)>),
}

/// A parsed `select` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectRequest {
    /// Named benchmark (`eatss_kernels::by_name`), exclusive with
    /// `source`.
    pub kernel: Option<String>,
    /// Inline kernel DSL source.
    pub source: Option<String>,
    /// Problem sizes.
    pub sizes: SizeSpec,
    /// Shared-memory split factor (paper §IV-E).
    pub split: f64,
    /// Warp fraction (paper §V-D).
    pub warp_fraction: f64,
    /// FP32 instead of FP64.
    pub fp32: bool,
    /// Strict thread-block cap.
    pub strict_cap: bool,
    /// Target device: any built-in profile name
    /// (`eatss_gpusim::DeviceProfile::builtin_names`); `ga100` when
    /// absent. Wire field `device`, with `arch` kept as an alias for
    /// older clients.
    pub arch: Option<String>,
    /// Per-request solve deadline in milliseconds (clamped server-side).
    pub deadline_ms: Option<u64>,
    /// Also compile + measure the selected tiles.
    pub evaluate: bool,
    /// Also verify the selected tiles bitwise against the reference
    /// interpreter (batched differential oracle at shrunk sizes).
    pub verify: bool,
    /// Test-only fault injection (`"panic"`, `"sleep:<ms>"`); ignored
    /// unless the server was started with chaos enabled.
    pub chaos: Option<String>,
}

impl SelectRequest {
    /// The request's solver configuration knobs as an [`EatssConfig`].
    pub fn eatss_config(&self) -> EatssConfig {
        EatssConfig {
            split_factor: self.split,
            warp_fraction: self.warp_fraction,
            precision: if self.fp32 {
                Precision::F32
            } else {
                Precision::F64
            },
            cap: if self.strict_cap {
                ThreadBlockCap::Strict
            } else {
                ThreadBlockCap::Virtual
            },
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<String>,
    /// The operation.
    pub op: Op,
    /// Payload for [`Op::Select`].
    pub select: Option<SelectRequest>,
    /// Payload for [`Op::Trace`].
    pub trace: Option<TraceQuery>,
}

/// Parses one request line.
///
/// # Errors
///
/// A [`ProtocolError`] describing exactly which part of the line was
/// unacceptable.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let value = Json::parse(line).map_err(ProtocolError::BadJson)?;
    let obj = value.as_object().ok_or(ProtocolError::NotAnObject)?;

    let id = match obj.get("id") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::Num(n)) => Some(eatss_trace::json::number(*n)),
        Some(_) => {
            return Err(ProtocolError::BadField {
                field: "id",
                expected: "string or number",
            })
        }
    };

    let op = match obj.get("op").and_then(Json::as_str).unwrap_or("select") {
        "select" => Op::Select,
        "pareto" => Op::Pareto,
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "metrics" => Op::Metrics,
        "trace" => Op::Trace,
        "compact" => Op::Compact,
        "shutdown" => Op::Shutdown,
        other => return Err(ProtocolError::UnknownOp(other.to_string())),
    };

    // A pareto request is a select request measured across the whole
    // configuration grid, so it shares the select payload (the per-point
    // split/warp knobs are simply ignored by the sweep).
    let select = if op == Op::Select || op == Op::Pareto {
        Some(parse_select(&value)?)
    } else {
        None
    };
    let trace = if op == Op::Trace {
        Some(parse_trace(&value)?)
    } else {
        None
    };

    Ok(Request {
        id,
        op,
        select,
        trace,
    })
}

fn parse_trace(value: &Json) -> Result<TraceQuery, ProtocolError> {
    let which = match opt_str(value, "which")?.as_deref() {
        None => TraceWhich::Slowest,
        Some(name) => TraceWhich::parse(name).ok_or(ProtocolError::BadField {
            field: "which",
            expected: "\"recent\", \"slowest\" or \"errors\"",
        })?,
    };
    let limit = match opt_f64(value, "limit")? {
        None => 1,
        Some(n) if n.fract() == 0.0 && (1.0..=TRACE_LIMIT_CAP as f64).contains(&n) => n as usize,
        Some(_) => {
            return Err(ProtocolError::BadField {
                field: "limit",
                expected: "integer in [1, 32]",
            })
        }
    };
    Ok(TraceQuery { which, limit })
}

fn parse_select(value: &Json) -> Result<SelectRequest, ProtocolError> {
    let kernel = opt_str(value, "kernel")?;
    let source = opt_str(value, "source")?;
    if kernel.is_none() && source.is_none() {
        return Err(ProtocolError::MissingField("kernel"));
    }

    let sizes = if let Some(n) = value.get("n") {
        let n = n.as_f64().ok_or(ProtocolError::BadField {
            field: "n",
            expected: "positive integer",
        })?;
        if !(n.fract() == 0.0 && (1.0..=1e15).contains(&n)) {
            return Err(ProtocolError::BadField {
                field: "n",
                expected: "positive integer",
            });
        }
        SizeSpec::Uniform(n as i64)
    } else if let Some(map) = value.get("sizes").and_then(Json::as_object) {
        let mut pairs = Vec::with_capacity(map.len());
        for (k, v) in map {
            let n = v.as_f64().filter(|n| n.fract() == 0.0 && *n >= 1.0).ok_or(
                ProtocolError::BadField {
                    field: "sizes",
                    expected: "object of positive integers",
                },
            )?;
            pairs.push((k.clone(), n as i64));
        }
        SizeSpec::Explicit(pairs)
    } else {
        match value.get("dataset") {
            None => SizeSpec::Dataset("standard".to_string()),
            Some(Json::Str(s)) if s == "standard" || s == "xl" => SizeSpec::Dataset(s.clone()),
            Some(_) => {
                return Err(ProtocolError::BadField {
                    field: "dataset",
                    expected: "\"standard\" or \"xl\"",
                })
            }
        }
    };

    let split = opt_f64(value, "split")?.unwrap_or(0.5);
    if !(0.0..=1.0).contains(&split) {
        return Err(ProtocolError::BadField {
            field: "split",
            expected: "number in [0, 1]",
        });
    }
    let warp_fraction = opt_f64(value, "warp_frac")?.unwrap_or(0.5);
    if !(warp_fraction > 0.0 && warp_fraction <= 1.0) {
        return Err(ProtocolError::BadField {
            field: "warp_frac",
            expected: "number in (0, 1]",
        });
    }

    let deadline_ms = match opt_f64(value, "deadline_ms")? {
        None => None,
        Some(ms) if ms.fract() == 0.0 && (1.0..=86_400_000.0).contains(&ms) => Some(ms as u64),
        Some(_) => {
            return Err(ProtocolError::BadField {
                field: "deadline_ms",
                expected: "positive integer milliseconds",
            })
        }
    };

    Ok(SelectRequest {
        kernel,
        source,
        sizes,
        split,
        warp_fraction,
        fp32: opt_bool(value, "fp32")?.unwrap_or(false),
        strict_cap: opt_bool(value, "strict_cap")?.unwrap_or(false),
        // `device` is the canonical spelling; `arch` survives as an
        // alias so pre-portfolio clients keep working.
        arch: match opt_str(value, "device")? {
            Some(device) => Some(device),
            None => opt_str(value, "arch")?,
        },
        deadline_ms,
        evaluate: opt_bool(value, "evaluate")?.unwrap_or(false),
        verify: opt_bool(value, "verify")?.unwrap_or(false),
        chaos: opt_str(value, "chaos")?,
    })
}

fn opt_str(value: &Json, field: &'static str) -> Result<Option<String>, ProtocolError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtocolError::BadField {
            field,
            expected: "string",
        }),
    }
}

fn opt_f64(value: &Json, field: &'static str) -> Result<Option<f64>, ProtocolError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(ProtocolError::BadField {
            field,
            expected: "number",
        }),
    }
}

fn opt_bool(value: &Json, field: &'static str) -> Result<Option<bool>, ProtocolError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(ProtocolError::BadField {
            field,
            expected: "boolean",
        }),
    }
}

/// Incremental JSON-lines framer over a raw stream. Holds the carry-over
/// buffer between frames and enforces the size limit *while reading*, so
/// an attacker cannot balloon memory by never sending a newline.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    /// A framer enforcing `max_frame` bytes per line (newline included).
    pub fn new(max_frame: usize) -> Self {
        FrameReader {
            buf: Vec::with_capacity(1024),
            max_frame,
        }
    }

    /// Whether a partial frame is buffered — distinguishes a slow-loris
    /// sender (mid-frame stall, subject to the read timeout) from an idle
    /// keep-alive connection.
    pub fn buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads the next line. `Ok(None)` is a clean end-of-stream (EOF at a
    /// frame boundary).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::FrameTooLarge`] when the limit trips,
    /// [`ProtocolError::Timeout`] when the socket read times out,
    /// [`ProtocolError::ConnectionClosed`] on EOF mid-frame, and
    /// [`ProtocolError::Io`] for everything else.
    pub fn next_frame(&mut self, stream: &mut impl Read) -> Result<Option<String>, ProtocolError> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                let text = String::from_utf8(line)
                    .map_err(|e| ProtocolError::BadJson(format!("invalid UTF-8: {e}")))?;
                return Ok(Some(text));
            }
            if self.buf.len() >= self.max_frame {
                return Err(ProtocolError::FrameTooLarge {
                    limit: self.max_frame,
                });
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(ProtocolError::ConnectionClosed);
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(ProtocolError::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::BrokenPipe =>
                {
                    return Err(ProtocolError::ConnectionClosed)
                }
                Err(e) => return Err(ProtocolError::Io(e.to_string())),
            }
        }
    }
}

/// Builds one response line (without the trailing newline) from
/// `(key, raw-JSON-value)` pairs. Values must already be valid JSON
/// fragments; use [`str_field`]/[`eatss_trace::json::number`] helpers.
pub fn object_line(fields: &[(&str, String)]) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":");
        out.push_str(v);
    }
    out.push('}');
    out
}

/// Renders a string as a JSON string literal.
pub fn str_field(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let r = parse_request(r#"{"kernel": "gemm"}"#).unwrap();
        assert_eq!(r.op, Op::Select);
        let s = r.select.unwrap();
        assert_eq!(s.kernel.as_deref(), Some("gemm"));
        assert_eq!(s.sizes, SizeSpec::Dataset("standard".into()));
        assert_eq!(s.split, 0.5);
        assert!(!s.evaluate);
    }

    #[test]
    fn parses_full_select() {
        let r = parse_request(
            r#"{"id": "r1", "op": "select", "kernel": "atax", "n": 4000,
                "split": 0.67, "warp_frac": 0.25, "fp32": true,
                "strict_cap": true, "deadline_ms": 250, "evaluate": true,
                "verify": true}"#,
        )
        .unwrap();
        assert_eq!(r.id.as_deref(), Some("r1"));
        let s = r.select.unwrap();
        assert_eq!(s.sizes, SizeSpec::Uniform(4000));
        assert_eq!(s.deadline_ms, Some(250));
        assert!(s.fp32 && s.strict_cap && s.evaluate && s.verify);
        let cfg = s.eatss_config();
        assert_eq!(cfg.split_factor, 0.67);
        assert_eq!(cfg.precision, Precision::F32);
    }

    #[test]
    fn device_field_parses_and_aliases_arch() {
        let r = parse_request(r#"{"kernel": "gemm", "device": "orin"}"#).unwrap();
        assert_eq!(r.select.unwrap().arch.as_deref(), Some("orin"));
        // Legacy spelling still works …
        let r = parse_request(r#"{"kernel": "gemm", "arch": "xavier"}"#).unwrap();
        assert_eq!(r.select.unwrap().arch.as_deref(), Some("xavier"));
        // … and the canonical one wins when both are present.
        let r =
            parse_request(r#"{"kernel": "gemm", "device": "h100", "arch": "xavier"}"#).unwrap();
        assert_eq!(r.select.unwrap().arch.as_deref(), Some("h100"));
        assert!(matches!(
            parse_request(r#"{"kernel": "gemm", "device": 3}"#),
            Err(ProtocolError::BadField { field: "device", .. })
        ));
    }

    #[test]
    fn pareto_op_carries_a_select_payload() {
        let r = parse_request(r#"{"op": "pareto", "kernel": "gemm", "device": "nano"}"#).unwrap();
        assert_eq!(r.op, Op::Pareto);
        let s = r.select.expect("pareto reuses the select payload");
        assert_eq!(s.kernel.as_deref(), Some("gemm"));
        assert_eq!(s.arch.as_deref(), Some("nano"));
        // Same shape validation as select: a kernel (or source) is
        // mandatory.
        assert!(matches!(
            parse_request(r#"{"op": "pareto"}"#),
            Err(ProtocolError::MissingField("kernel"))
        ));
    }

    #[test]
    fn numeric_ids_echo_as_text() {
        let r = parse_request(r#"{"id": 42, "op": "ping"}"#).unwrap();
        assert_eq!(r.id.as_deref(), Some("42"));
    }

    #[test]
    fn explicit_sizes_parse() {
        let r = parse_request(r#"{"kernel": "gemm", "sizes": {"M": 100, "N": 200}}"#).unwrap();
        let SizeSpec::Explicit(pairs) = r.select.unwrap().sizes else {
            panic!("expected explicit sizes");
        };
        assert!(pairs.contains(&("M".into(), 100)));
        assert!(pairs.contains(&("N".into(), 200)));
    }

    #[test]
    fn parses_metrics_and_trace_ops() {
        let r = parse_request(r#"{"op": "metrics"}"#).unwrap();
        assert_eq!(r.op, Op::Metrics);
        assert!(r.select.is_none() && r.trace.is_none());

        let r = parse_request(r#"{"op": "trace"}"#).unwrap();
        assert_eq!(r.op, Op::Trace);
        let q = r.trace.unwrap();
        assert_eq!(q.which, TraceWhich::Slowest);
        assert_eq!(q.limit, 1);

        let r = parse_request(r#"{"op": "trace", "which": "recent", "limit": 8}"#).unwrap();
        let q = r.trace.unwrap();
        assert_eq!(q.which, TraceWhich::Recent);
        assert_eq!(q.limit, 8);

        assert!(matches!(
            parse_request(r#"{"op": "trace", "which": "fastest"}"#),
            Err(ProtocolError::BadField { field: "which", .. })
        ));
        assert!(matches!(
            parse_request(r#"{"op": "trace", "limit": 0}"#),
            Err(ProtocolError::BadField { field: "limit", .. })
        ));
        assert!(matches!(
            parse_request(r#"{"op": "trace", "limit": 1000}"#),
            Err(ProtocolError::BadField { field: "limit", .. })
        ));
    }

    #[test]
    fn rejects_garbage_with_typed_errors() {
        assert!(matches!(
            parse_request("not json"),
            Err(ProtocolError::BadJson(_))
        ));
        assert!(matches!(
            parse_request("[1, 2]"),
            Err(ProtocolError::NotAnObject)
        ));
        assert!(matches!(
            parse_request("{}"),
            Err(ProtocolError::MissingField("kernel"))
        ));
        assert!(matches!(
            parse_request(r#"{"op": "teleport"}"#),
            Err(ProtocolError::UnknownOp(_))
        ));
        assert!(matches!(
            parse_request(r#"{"kernel": "gemm", "split": 7}"#),
            Err(ProtocolError::BadField { field: "split", .. })
        ));
        assert!(matches!(
            parse_request(r#"{"kernel": "gemm", "deadline_ms": -5}"#),
            Err(ProtocolError::BadField { field: "deadline_ms", .. })
        ));
        assert!(matches!(
            parse_request(r#"{"kernel": "gemm", "n": 2.5}"#),
            Err(ProtocolError::BadField { field: "n", .. })
        ));
    }

    #[test]
    fn frame_reader_splits_lines_and_enforces_limit() {
        let mut input: &[u8] = b"{\"a\":1}\n{\"b\":2}\r\n";
        let mut reader = FrameReader::new(64);
        assert_eq!(
            reader.next_frame(&mut input).unwrap().as_deref(),
            Some("{\"a\":1}")
        );
        assert_eq!(
            reader.next_frame(&mut input).unwrap().as_deref(),
            Some("{\"b\":2}")
        );
        assert_eq!(reader.next_frame(&mut input).unwrap(), None);

        let big = vec![b'x'; 100];
        let mut reader = FrameReader::new(64);
        assert!(matches!(
            reader.next_frame(&mut big.as_slice()),
            Err(ProtocolError::FrameTooLarge { limit: 64 })
        ));

        let mut partial: &[u8] = b"{\"unterminated\": ";
        let mut reader = FrameReader::new(64);
        assert!(matches!(
            reader.next_frame(&mut partial),
            Err(ProtocolError::ConnectionClosed)
        ));
    }

    #[test]
    fn object_line_escapes_keys_and_passes_values() {
        let line = object_line(&[("status", str_field("ok")), ("n", "3".to_string())]);
        assert_eq!(line, r#"{"status":"ok","n":3}"#);
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
    }
}
