//! Load-test and chaos harness for the tuning daemon.
//!
//! Replays synthetic clients (PolyBench × tile-space mix) against an
//! in-process server under seeded chaos — malformed frames, oversized
//! frames, slow-loris stalls, dropped connections, panic requests, tiny
//! deadlines, gpusim measurement faults, queue-saturating bursts — then
//! restarts the server (cleanly, and again after deliberately corrupting
//! journal shards) and verifies:
//!
//! * **zero crash** — the daemon answers a ping after everything above;
//! * **zero lost entries** — every committed response (optimal solve or
//!   proved infeasibility) is a warm cache hit after restart, with
//!   bitwise-identical tiles;
//! * **well-formed shedding** — every `overloaded` response carries a
//!   retry-after hint;
//! * **coalescing observed** — a barrier-synchronised burst of identical
//!   requests joins one in-flight solve (`cache: "coalesced"`);
//! * **histogram agreement** — the server's own `serve.request_us`
//!   latency histogram (scraped via the `metrics` op) matches the
//!   client-sampled percentiles within one log-2 bucket width.
//!
//! Writes `BENCH_serve.json` and exits non-zero if any assertion fails.

use eatss::SyncPolicy;
use eatss_gpusim::FaultPlan;
use eatss_serve::client::{Client, SelectArgs};
use eatss_serve::server::{start, Endpoint, ServerConfig, ServerHandle};
use eatss_trace::json::Json;
use std::collections::BTreeMap;
use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Deterministic xorshift64* — the chaos schedule must replay from the
/// seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// One request the load phase committed; replayed after restarts.
#[derive(Debug, Clone)]
struct Committed {
    args: SelectArgs,
    status: String,
    tiles: String,
}

#[derive(Default)]
struct ClientReport {
    latencies_ms: Vec<f64>,
    ok: u64,
    infeasible: u64,
    errors: u64,
    overloaded: u64,
    malformed_shed_ok: u64,
    malformed_sent: u64,
    slowloris: u64,
    dropped: u64,
    panics_requested: u64,
    fallbacks_seen: u64,
    committed: Vec<Committed>,
    bad_overloaded: u64,
}

struct Plan {
    mode: &'static str,
    clients: usize,
    requests_per_client: usize,
    burst: usize,
}

const KERNELS: &[&str] = &["gemm", "atax", "bicg", "mvt", "gesummv"];
const SPLITS: &[f64] = &[0.0, 0.5, 0.67];
const WARP_FRACS: &[f64] = &[0.125, 0.25, 0.5, 1.0];
const SIZES: &[i64] = &[512, 1024, 2000];

fn main() -> ExitCode {
    let mut mode = "full";
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                let m = args.next().unwrap_or_default();
                mode = match m.as_str() {
                    "smoke" => "smoke",
                    "full" => "full",
                    _ => {
                        eprintln!("error: --mode wants smoke|full");
                        return ExitCode::from(2);
                    }
                };
            }
            "--out" => out = PathBuf::from(args.next().unwrap_or_default()),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("error: --seed wants a number");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("error: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let plan = match mode {
        "smoke" => Plan {
            mode,
            clients: 4,
            requests_per_client: 30,
            burst: 40,
        },
        _ => Plan {
            mode,
            clients: 12,
            requests_per_client: 100,
            burst: 64,
        },
    };
    // Worker panics are expected (chaos) and caught; one line each is
    // plenty.
    std::panic::set_hook(Box::new(|info| eprintln!("panic (caught): {info}")));

    let cache_dir = std::env::temp_dir().join(format!("eatss-bench-serve-{}", std::process::id()));
    let _ = fs::remove_dir_all(&cache_dir);

    let config = server_config(&cache_dir);
    let handle = match start(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.tcp_addr().expect("tcp endpoint").to_string();
    eprintln!("bench_serve[{mode}]: server on {addr}, cache at {}", cache_dir.display());

    // ── Phase 1: concurrent chaos load ─────────────────────────────────
    let load_started = Instant::now();
    let mut report = run_load(&addr, &plan, seed);
    report.overloaded += run_burst(&addr, &plan, seed ^ 0x9e37_79b9);
    let (coalesce_clients, coalesced_responses) = run_coalesce(&addr);
    let load_wall_s = load_started.elapsed().as_secs_f64();

    // The daemon must still be alive after everything phase 1 threw at
    // it.
    let zero_crash_after_load = ping_ok(&addr);
    let server_stats = handle.stats();
    let cache_stats = handle.cache_stats();

    // ── Phase 2a: clean restart → warm-start, zero lost entries ───────
    handle.shutdown();
    let handle = start(server_config(&cache_dir)).expect("clean restart");
    let addr2 = handle.tcp_addr().expect("tcp endpoint").to_string();
    let replayed = handle.replayed();
    let committed = dedupe(&report.committed);
    let mut warm_hits = 0u64;
    let mut lost: Vec<String> = Vec::new();
    {
        let mut client = Client::connect_tcp(&addr2).expect("connect after restart");
        for entry in &committed {
            match client.select(&entry.args) {
                Ok(reply) => {
                    let cache = reply.get("cache").and_then(Json::as_str).unwrap_or("");
                    let status = reply.get("status").and_then(Json::as_str).unwrap_or("");
                    let tiles = reply
                        .get("tiles")
                        .map(|t| format!("{t:?}"))
                        .unwrap_or_default();
                    if cache == "hit" && status == entry.status && tiles == entry.tiles {
                        warm_hits += 1;
                    } else {
                        lost.push(format!(
                            "{:?} -> cache={cache} status={status}",
                            entry.args.kernel
                        ));
                    }
                }
                Err(e) => lost.push(format!("{:?} -> {e}", entry.args.kernel)),
            }
        }
    }
    let zero_lost_entries = lost.is_empty();

    // ── Phase 2b: corrupt shards, restart, recovery must hold ─────────
    handle.shutdown();
    let (flipped, truncated) = corrupt_journal(&cache_dir, seed);
    let handle = start(server_config(&cache_dir)).expect("restart after corruption");
    let recovery = handle.recovery();
    let addr3 = handle.tcp_addr().expect("tcp endpoint").to_string();
    let alive_after_corruption = ping_ok(&addr3);
    let recovered_detected =
        recovery.corrupt_records_skipped > 0 || recovery.torn_tails_truncated > 0;
    handle.shutdown();

    // ── Phase 3: server-side histograms vs client-side samples ────────
    // Reset the metrics registry so the scraped histogram covers exactly
    // this phase's requests, then drive fresh solves and compare the
    // server's own `serve.request_us` quantiles against what the client
    // measured. The estimator returns bucket upper bounds, so the client
    // sample must land within one log-2 bucket width of the estimate.
    eatss_trace::start_collecting();
    let handle = start(server_config(&cache_dir)).expect("restart for histogram agreement");
    let addr4 = handle.tcp_addr().expect("tcp endpoint").to_string();
    let agreement = run_agreement(&addr4, &plan);
    handle.shutdown();

    let zero_crash = zero_crash_after_load && alive_after_corruption;
    let shed_well_formed = report.bad_overloaded == 0;
    let coalescing_observed = coalesced_responses > 0 && server_stats.coalesced > 0;

    // ── Report ─────────────────────────────────────────────────────────
    report.latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        if report.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((report.latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        report.latencies_ms[idx]
    };
    let total_requests = report.ok + report.infeasible + report.errors + report.overloaded;
    let hit_rate = if cache_stats.hits + cache_stats.misses > 0 {
        cache_stats.hits as f64 / (cache_stats.hits + cache_stats.misses) as f64
    } else {
        0.0
    };

    let json = format!(
        r#"{{
  "mode": "{mode}",
  "seed": {seed},
  "load_wall_s": {load_wall_s:.2},
  "requests": {{
    "total": {total},
    "ok": {ok},
    "infeasible": {infeasible},
    "errors": {errors},
    "overloaded": {overloaded},
    "fallbacks_seen": {fallbacks},
    "malformed_sent": {malformed},
    "slowloris_connections": {slowloris},
    "dropped_connections": {dropped},
    "panic_requests": {panics}
  }},
  "latency_ms": {{ "p50": {p50:.3}, "p99": {p99:.3}, "max": {maxl:.3}, "count": {lat_count} }},
  "server": {{
    "requests": {srv_requests},
    "shed": {srv_shed},
    "coalesced": {srv_coalesced},
    "protocol_errors": {srv_protocol_errors},
    "panics_caught": {srv_panics},
    "fallbacks": {srv_fallbacks}
  }},
  "cache": {{
    "hits": {c_hits},
    "misses": {c_misses},
    "infeasible": {c_infeasible},
    "hit_rate": {hit_rate:.4}
  }},
  "coalesce": {{
    "burst_clients": {coalesce_clients},
    "coalesced_responses": {coalesced_responses},
    "server_coalesced": {srv_coalesced}
  }},
  "histogram_agreement": {{
    "samples": {agr_samples},
    "client_p50_us": {agr_client_p50:.1},
    "server_p50_us": {agr_server_p50},
    "client_p99_us": {agr_client_p99:.1},
    "server_p99_us": {agr_server_p99},
    "within_one_bucket": {agr_ok}
  }},
  "restart": {{
    "replayed": {replayed},
    "committed_unique": {committed_n},
    "warm_hits": {warm_hits},
    "corruption": {{
      "bits_flipped": {flipped},
      "bytes_truncated": {truncated},
      "corrupt_records_skipped": {rec_skipped},
      "torn_tails_truncated": {rec_torn},
      "records_recovered": {rec_ok}
    }}
  }},
  "assertions": {{
    "zero_crash": {zero_crash},
    "zero_lost_entries": {zero_lost_entries},
    "shed_well_formed": {shed_well_formed},
    "corruption_detected": {recovered_detected},
    "coalescing_observed": {coalescing_observed},
    "histograms_agree": {agr_ok}
  }}
}}
"#,
        mode = plan.mode,
        total = total_requests,
        ok = report.ok,
        infeasible = report.infeasible,
        errors = report.errors,
        overloaded = report.overloaded,
        fallbacks = report.fallbacks_seen,
        malformed = report.malformed_sent,
        slowloris = report.slowloris,
        dropped = report.dropped,
        panics = report.panics_requested,
        p50 = pct(0.50),
        p99 = pct(0.99),
        maxl = pct(1.0),
        lat_count = report.latencies_ms.len(),
        srv_requests = server_stats.requests,
        srv_shed = server_stats.shed,
        srv_coalesced = server_stats.coalesced,
        srv_protocol_errors = server_stats.protocol_errors,
        srv_panics = server_stats.panics_caught,
        srv_fallbacks = server_stats.fallbacks,
        c_hits = cache_stats.hits,
        c_misses = cache_stats.misses,
        c_infeasible = cache_stats.infeasible,
        committed_n = committed.len(),
        rec_skipped = recovery.corrupt_records_skipped,
        rec_torn = recovery.torn_tails_truncated,
        rec_ok = recovery.records_recovered,
        agr_samples = agreement.samples,
        agr_client_p50 = agreement.client_p50_us,
        agr_server_p50 = agreement.server_p50_us,
        agr_client_p99 = agreement.client_p99_us,
        agr_server_p99 = agreement.server_p99_us,
        agr_ok = agreement.within_one_bucket,
    );
    if let Err(e) = fs::write(&out, &json) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("bench_serve: wrote {}", out.display());
    let _ = fs::remove_dir_all(&cache_dir);

    if !lost.is_empty() {
        eprintln!("LOST ENTRIES:");
        for l in lost.iter().take(10) {
            eprintln!("  {l}");
        }
    }
    let pass = zero_crash
        && zero_lost_entries
        && shed_well_formed
        && recovered_detected
        && coalescing_observed
        && agreement.within_one_bucket;
    if !pass {
        eprintln!(
            "bench_serve: ASSERTION FAILED (zero_crash={zero_crash} zero_lost_entries={zero_lost_entries} shed_well_formed={shed_well_formed} corruption_detected={recovered_detected} coalescing_observed={coalescing_observed} histograms_agree={})",
            agreement.within_one_bucket
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench_serve: PASS — {total_requests} requests, p50 {:.2} ms, p99 {:.2} ms, hit rate {:.1}%",
        pct(0.50),
        pct(0.99),
        hit_rate * 100.0
    );
    ExitCode::SUCCESS
}

fn server_config(cache_dir: &Path) -> ServerConfig {
    let mut config = ServerConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:0".to_string()),
        cache_dir: Some(cache_dir.to_path_buf()),
        workers: 4,
        queue_capacity: 16,
        max_frame_bytes: 64 << 10,
        read_timeout: Duration::from_millis(500),
        default_deadline: Duration::from_secs(2),
        allow_chaos: true,
        fault_plan: Some(FaultPlan::new(7).with_rates(0.05, 0.05, 0.05)),
        ..ServerConfig::default()
    };
    config.journal.sync = SyncPolicy::Always;
    config
}

fn ping_ok(addr: &str) -> bool {
    Client::connect_tcp(addr)
        .ok()
        .and_then(|mut c| c.ping().ok())
        .and_then(|r| r.get("status").and_then(Json::as_str).map(|s| s == "ok"))
        .unwrap_or(false)
}

fn run_load(addr: &str, plan: &Plan, seed: u64) -> ClientReport {
    let mut handles = Vec::new();
    for i in 0..plan.clients {
        let addr = addr.to_string();
        let requests = plan.requests_per_client;
        let client_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        handles.push(std::thread::spawn(move || {
            client_thread(&addr, requests, client_seed)
        }));
    }
    let mut merged = ClientReport::default();
    for h in handles {
        let r = h.join().expect("client thread");
        merged.latencies_ms.extend(r.latencies_ms);
        merged.ok += r.ok;
        merged.infeasible += r.infeasible;
        merged.errors += r.errors;
        merged.overloaded += r.overloaded;
        merged.malformed_sent += r.malformed_sent;
        merged.malformed_shed_ok += r.malformed_shed_ok;
        merged.slowloris += r.slowloris;
        merged.dropped += r.dropped;
        merged.panics_requested += r.panics_requested;
        merged.fallbacks_seen += r.fallbacks_seen;
        merged.bad_overloaded += r.bad_overloaded;
        merged.committed.extend(r.committed);
    }
    merged
}

fn client_thread(addr: &str, requests: usize, seed: u64) -> ClientReport {
    let mut rng = Rng::new(seed);
    let mut report = ClientReport::default();
    let mut client = Client::connect_tcp(addr).expect("connect");
    for i in 0..requests {
        // ~8% of iterations do transport chaos instead of a request.
        if rng.chance(8) {
            match rng.below(4) {
                0 => {
                    // Malformed frame: expect a typed error response, same
                    // connection keeps serving.
                    report.malformed_sent += 1;
                    match client.request_line("{\"op\": \"select\", this is not json") {
                        Ok(reply)
                            if reply.get("status").and_then(Json::as_str) == Some("error") =>
                        {
                            report.malformed_shed_ok += 1
                        }
                        _ => client = reconnect(addr),
                    }
                }
                1 => {
                    // Oversized frame: server must answer then close.
                    report.malformed_sent += 1;
                    let garbage = vec![b'x'; 80 << 10];
                    let _ = client.write_raw(&garbage);
                    let _ = client.read_response();
                    client = reconnect(addr);
                }
                2 => {
                    // Slow-loris: stall mid-frame past the read timeout.
                    report.slowloris += 1;
                    let _ = client.write_raw(b"{\"op\": \"sel");
                    std::thread::sleep(Duration::from_millis(800));
                    let _ = client.read_response(); // timeout error or close
                    client = reconnect(addr);
                }
                _ => {
                    // Drop mid-request.
                    report.dropped += 1;
                    let _ = client.write_raw(b"{\"kernel\": \"ge");
                    client = reconnect(addr);
                }
            }
            continue;
        }

        let kernel: &&str = rng.pick(KERNELS);
        let mut args = SelectArgs::kernel(kernel);
        args.id = Some(format!("c{seed:x}-{i}"));
        args.n = Some(*rng.pick(SIZES));
        args.split = Some(*rng.pick(SPLITS));
        args.warp_frac = Some(*rng.pick(WARP_FRACS));
        args.evaluate = rng.chance(25);
        if rng.chance(2) {
            args.chaos = Some("panic".to_string());
            report.panics_requested += 1;
        } else if rng.chance(5) {
            // Tiny deadline: anytime best-so-far or 32^d fallback.
            args.deadline_ms = Some(1 + rng.below(3));
        }
        if rng.chance(10) {
            // Infeasible: WAF 16 exceeds the 8-point extents.
            args.n = Some(8);
        }

        let started = Instant::now();
        match client.select(&args) {
            Ok(reply) => {
                let latency = started.elapsed().as_secs_f64() * 1000.0;
                let status = reply.get("status").and_then(Json::as_str).unwrap_or("");
                match status {
                    "ok" => {
                        report.ok += 1;
                        report.latencies_ms.push(latency);
                        if reply.get("fell_back").and_then(Json::as_bool) == Some(true) {
                            report.fallbacks_seen += 1;
                        }
                        if reply.get("provenance").and_then(Json::as_str) == Some("solved") {
                            report.committed.push(Committed {
                                args: strip_volatile(&args),
                                status: "ok".to_string(),
                                tiles: reply
                                    .get("tiles")
                                    .map(|t| format!("{t:?}"))
                                    .unwrap_or_default(),
                            });
                        }
                    }
                    "infeasible" => {
                        report.infeasible += 1;
                        report.latencies_ms.push(latency);
                        report.committed.push(Committed {
                            args: strip_volatile(&args),
                            status: "infeasible".to_string(),
                            tiles: String::new(),
                        });
                    }
                    "overloaded" => {
                        report.overloaded += 1;
                        if reply.get("retry_after_ms").and_then(Json::as_f64).is_none() {
                            report.bad_overloaded += 1;
                        }
                    }
                    _ => report.errors += 1,
                }
            }
            Err(_) => {
                report.errors += 1;
                client = reconnect(addr);
            }
        }
    }
    report
}

/// Queue-saturation burst: more in-flight slow requests than the queue
/// holds; the excess must shed with well-formed `overloaded` responses.
fn run_burst(addr: &str, plan: &Plan, seed: u64) -> u64 {
    let mut handles = Vec::new();
    for i in 0..plan.burst {
        let addr = addr.to_string();
        let n = 2100 + (seed % 97) as i64 + i as i64; // fresh keys, no coalescing
        handles.push(std::thread::spawn(move || {
            let mut client = match Client::connect_tcp(&addr) {
                Ok(c) => c,
                Err(_) => return (0u64, 0u64),
            };
            let mut args = SelectArgs::kernel("gemm");
            args.n = Some(n);
            args.chaos = Some("sleep:200".to_string());
            match client.select(&args) {
                Ok(reply) => {
                    let status = reply.get("status").and_then(Json::as_str).unwrap_or("");
                    if status == "overloaded" {
                        let well_formed =
                            reply.get("retry_after_ms").and_then(Json::as_f64).is_some();
                        (1, u64::from(!well_formed))
                    } else {
                        (0, 0)
                    }
                }
                Err(_) => (0, 0),
            }
        }));
    }
    let mut shed = 0;
    let mut malformed = 0;
    for h in handles {
        let (s, m) = h.join().unwrap_or((0, 0));
        shed += s;
        malformed += m;
    }
    assert_eq!(malformed, 0, "every overloaded response must be well-formed");
    eprintln!("bench_serve: burst shed {shed}/{} requests", plan.burst);
    shed
}

/// Barrier-synchronised burst of identical requests: one solves, the
/// rest must join it in flight and answer `cache: "coalesced"`. The
/// `sleep` chaos directive keeps the solve in flight long enough for
/// every waiter to arrive, and is part of the coalesce key, so all
/// eight requests are structurally identical.
fn run_coalesce(addr: &str) -> (u64, u64) {
    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let addr = addr.to_string();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).ok()?;
            let mut args = SelectArgs::kernel("gemm");
            args.n = Some(4321); // fresh key: never requested by the load phase
            args.chaos = Some("sleep:250".to_string());
            barrier.wait();
            let reply = client.select(&args).ok()?;
            Some(reply.get("cache").and_then(Json::as_str) == Some("coalesced"))
        }));
    }
    let coalesced = handles
        .into_iter()
        .filter_map(|h| h.join().ok().flatten())
        .filter(|&c| c)
        .count() as u64;
    eprintln!("bench_serve: coalesce burst — {coalesced}/{CLIENTS} responses joined in flight");
    (CLIENTS as u64, coalesced)
}

/// What phase 3 measured: client-sampled request percentiles next to the
/// server's own histogram estimates, scraped via the `metrics` op.
struct Agreement {
    samples: usize,
    client_p50_us: f64,
    server_p50_us: u64,
    client_p99_us: f64,
    server_p99_us: u64,
    within_one_bucket: bool,
}

/// Drives fresh solves sequentially, then scrapes `serve.request_us`
/// from the `metrics` op and checks the server's log-2 quantile
/// estimates against the client's sampled percentiles. The estimator
/// answers bucket upper bounds (for a true value `v >= 1` the estimate
/// `e` satisfies `v <= e < 2v`), so the client sample — the same latency
/// plus loopback overhead — must land within one bucket width:
/// `e/2 <= client <= 2e`.
fn run_agreement(addr: &str, plan: &Plan) -> Agreement {
    let samples = if plan.mode == "smoke" { 12 } else { 48 };
    let mut client = Client::connect_tcp(addr).expect("connect for agreement");
    let mut latencies_us: Vec<f64> = Vec::with_capacity(samples);
    for i in 0..samples {
        let mut args = SelectArgs::kernel(KERNELS[i % KERNELS.len()]);
        args.n = Some(5000 + 7 * i as i64); // fresh keys: every request solves
        let started = Instant::now();
        let reply = client.select(&args).expect("agreement select");
        let status = reply.get("status").and_then(Json::as_str).unwrap_or("");
        assert!(
            status == "ok" || status == "infeasible",
            "agreement request answered {status}"
        );
        latencies_us.push(started.elapsed().as_secs_f64() * 1e6);
    }
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Same rank the histogram estimator targets: ceil(q * n), 1-based.
    let pct = |q: f64| -> f64 {
        let rank = ((q * latencies_us.len() as f64).ceil() as usize).max(1);
        latencies_us[rank - 1]
    };
    let reply = client.metrics().expect("metrics scrape");
    let hist = reply
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("serve.request_us"))
        .expect("serve.request_us histogram in metrics op");
    let server_count = hist.get("count").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    assert_eq!(server_count, samples, "histogram saw every request");
    let server_p50 = hist.get("p50").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let server_p99 = hist.get("p99").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let client_p50 = pct(0.50);
    let client_p99 = pct(0.99);
    let within = |client: f64, server: u64| -> bool {
        server > 0 && client >= server as f64 / 2.0 && client <= 2.0 * server as f64
    };
    let within_one_bucket = within(client_p50, server_p50) && within(client_p99, server_p99);
    eprintln!(
        "bench_serve: agreement — client p50 {client_p50:.0} us vs server {server_p50} us,          client p99 {client_p99:.0} us vs server {server_p99} us, within_one_bucket={within_one_bucket}"
    );
    Agreement {
        samples,
        client_p50_us: client_p50,
        server_p50_us: server_p50,
        client_p99_us: client_p99,
        server_p99_us: server_p99,
        within_one_bucket,
    }
}

/// Committed entries are replayed without chaos/deadline/evaluate — the
/// cache key ignores those, and the replay must be a pure hit.
fn strip_volatile(args: &SelectArgs) -> SelectArgs {
    let mut clean = args.clone();
    clean.chaos = None;
    clean.deadline_ms = None;
    clean.evaluate = false;
    clean.id = None;
    clean
}

fn dedupe(committed: &[Committed]) -> Vec<Committed> {
    let mut seen: BTreeMap<String, Committed> = BTreeMap::new();
    for c in committed {
        seen.entry(c.args.to_line()).or_insert_with(|| c.clone());
    }
    seen.into_values().collect()
}

fn reconnect(addr: &str) -> Client {
    for _ in 0..50 {
        if let Ok(c) = Client::connect_tcp(addr) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server unreachable");
}

/// Flips one bit mid-record in one shard and truncates another shard's
/// tail — the journal must skip/truncate and keep every other record.
fn corrupt_journal(dir: &Path, seed: u64) -> (u64, u64) {
    let mut rng = Rng::new(seed ^ 0xdead_beef);
    let mut shards: Vec<PathBuf> = fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".log"))
                })
                .collect()
        })
        .unwrap_or_default();
    shards.sort();
    let mut flipped = 0u64;
    let mut truncated = 0u64;
    for (i, path) in shards.iter().enumerate() {
        let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if len <= 24 {
            continue; // header only — nothing to corrupt
        }
        if i % 2 == 0 {
            // Bit flip somewhere after the 20-byte header.
            let offset = 20 + rng.below(len - 21);
            if let Ok(mut f) = fs::OpenOptions::new().read(true).write(true).open(path) {
                use std::io::Read;
                let mut byte = [0u8; 1];
                if f.seek(SeekFrom::Start(offset)).is_ok() && f.read_exact(&mut byte).is_ok() {
                    byte[0] ^= 1 << rng.below(8);
                    if f.seek(SeekFrom::Start(offset)).is_ok() && f.write_all(&byte).is_ok() {
                        flipped += 1;
                    }
                }
            }
        } else {
            // Torn tail: drop the final few bytes.
            let cut = 1 + rng.below(8);
            let new_len = len.saturating_sub(cut).max(20);
            if let Ok(f) = fs::OpenOptions::new().write(true).open(path) {
                if f.set_len(new_len).is_ok() {
                    truncated += len - new_len;
                }
            }
        }
    }
    eprintln!("bench_serve: corrupted journal — {flipped} bit flips, {truncated} tail bytes cut");
    (flipped, truncated)
}

// Silence dead-code lint for the handle type parameter in signatures.
#[allow(dead_code)]
fn _assert_send(_: &ServerHandle) {}
