//! The `eatss-serve` daemon binary.
//!
//! Prints one JSON "ready" line on stdout once listening (tests parse it
//! for the ephemeral port), then parks until a client sends the in-band
//! `shutdown` op, then drains gracefully and prints a final stats line.

use eatss::SyncPolicy;
use eatss_gpusim::FaultPlan;
use eatss_serve::server::{start, Endpoint, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
eatss-serve — crash-safe tile-selection daemon

USAGE:
  eatss-serve [OPTIONS]

OPTIONS:
  --addr HOST:PORT       TCP listen address (default 127.0.0.1:7411; port 0 = ephemeral)
  --unix PATH            listen on a unix socket instead of TCP
  --cache-dir DIR        journal the tile cache under DIR (default: in-memory only)
  --workers N            solver worker threads (default 4)
  --queue N              admission queue capacity (default 64)
  --deadline-ms N        default per-request solve deadline (default 2000)
  --max-deadline-ms N    upper clamp for requested deadlines (default 30000)
  --read-timeout-ms N    mid-frame stall budget (default 5000)
  --arch NAME|PATH       default device: a builtin profile (ga100, xavier,
                         h100, orin, nano) or a profile file (default ga100)
  --shards N             journal shard count (default 8)
  --no-sync              journal without per-append fsync (faster, test-only)
  --access-log PATH      append one JSON line per request to PATH
  --flight N             flight-recorder ring capacity per ring (default 64)
  --compact-garbage-ratio F
                         auto-compact the journal once its garbage ratio
                         exceeds F in (0,1); 'off' disables (default 0.5)
  --chaos                honour test-only `chaos` request fields
  --fault-seed N         inject measurement faults (gpusim FaultPlan seed)
  --fault-rates L,I,N    fault rates: launch-failure, invalid, nan (default 0.01,0.01,0.01)
  --help                 this text
";

fn main() -> ExitCode {
    let mut config = ServerConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:7411".to_string()),
        workers: 4,
        ..ServerConfig::default()
    };
    let mut fault_seed: Option<u64> = None;
    let mut fault_rates = (0.01, 0.01, 0.01);

    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.endpoint = Endpoint::Tcp(next_value(&mut args, "--addr")),
            "--unix" => {
                config.endpoint = Endpoint::Unix(PathBuf::from(next_value(&mut args, "--unix")))
            }
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(next_value(&mut args, "--cache-dir")))
            }
            "--workers" => config.workers = parse_num(&next_value(&mut args, "--workers")),
            "--queue" => config.queue_capacity = parse_num(&next_value(&mut args, "--queue")),
            "--deadline-ms" => {
                config.default_deadline =
                    Duration::from_millis(parse_num(&next_value(&mut args, "--deadline-ms")) as u64)
            }
            "--max-deadline-ms" => {
                config.max_deadline = Duration::from_millis(
                    parse_num(&next_value(&mut args, "--max-deadline-ms")) as u64,
                )
            }
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(
                    parse_num(&next_value(&mut args, "--read-timeout-ms")) as u64,
                )
            }
            "--arch" => {
                let spec = next_value(&mut args, "--arch");
                config.default_arch = match eatss_gpusim::DeviceProfile::builtin(&spec) {
                    Some(profile) => profile.into_arch(),
                    None if std::path::Path::new(&spec).exists() => {
                        match eatss_gpusim::DeviceProfile::load(&spec) {
                            Ok(profile) => profile.into_arch(),
                            Err(e) => {
                                eprintln!("error: --arch {spec}: {e}");
                                return ExitCode::from(2);
                            }
                        }
                    }
                    None => {
                        eprintln!(
                            "error: unknown arch '{spec}' (expected one of {:?} or a profile file)",
                            eatss_gpusim::DeviceProfile::builtin_names()
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--shards" => {
                config.journal.shards = parse_num(&next_value(&mut args, "--shards")) as u32
            }
            "--no-sync" => config.journal.sync = SyncPolicy::Never,
            "--access-log" => {
                config.access_log = Some(PathBuf::from(next_value(&mut args, "--access-log")))
            }
            "--flight" => config.flight_requests = parse_num(&next_value(&mut args, "--flight")),
            "--compact-garbage-ratio" => {
                let spec = next_value(&mut args, "--compact-garbage-ratio");
                config.compact_garbage_ratio = match spec.as_str() {
                    "off" => None,
                    other => match other.parse::<f64>() {
                        Ok(f) if f > 0.0 && f < 1.0 => Some(f),
                        _ => {
                            eprintln!(
                                "error: --compact-garbage-ratio wants a ratio in (0,1) or 'off'"
                            );
                            return ExitCode::from(2);
                        }
                    },
                };
            }
            "--chaos" => config.allow_chaos = true,
            "--fault-seed" => {
                fault_seed = Some(parse_num(&next_value(&mut args, "--fault-seed")) as u64)
            }
            "--fault-rates" => {
                let spec = next_value(&mut args, "--fault-rates");
                let parts: Vec<f64> = spec.split(',').filter_map(|p| p.parse().ok()).collect();
                if parts.len() != 3 {
                    eprintln!("error: --fault-rates wants L,I,N");
                    return ExitCode::from(2);
                }
                fault_rates = (parts[0], parts[1], parts[2]);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument '{other}'\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(seed) = fault_seed {
        config.fault_plan =
            Some(FaultPlan::new(seed).with_rates(fault_rates.0, fault_rates.1, fault_rates.2));
    }
    // Worker panics are isolated by catch_unwind and answered as error
    // responses; keep the stderr record to one line each.
    std::panic::set_hook(Box::new(|info| eprintln!("panic (caught): {info}")));

    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recovery = handle.recovery();
    println!(
        "{{\"ready\":true,\"addr\":\"{}\",\"replayed\":{},\"records_recovered\":{},\"corrupt_records_skipped\":{},\"torn_tails_truncated\":{}}}",
        handle.addr(),
        handle.replayed(),
        recovery.records_recovered,
        recovery.corrupt_records_skipped,
        recovery.torn_tails_truncated,
    );
    // Stdout is block-buffered when piped; the spawning test waits on
    // this line.
    let _ = std::io::Write::flush(&mut std::io::stdout());

    handle.wait_shutdown_requested();
    let stats = handle.shutdown();
    println!(
        "{{\"stopped\":true,\"requests\":{},\"ok\":{},\"errors\":{},\"shed\":{},\"panics_caught\":{}}}",
        stats.requests, stats.ok, stats.errors, stats.shed, stats.panics_caught,
    );
    ExitCode::SUCCESS
}

fn parse_num(text: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: '{text}' is not a number");
        std::process::exit(2);
    })
}
