//! Per-request flight recorder: bounded rings of span trees.
//!
//! Every completed `select` request harvests its trace lane into a
//! [`RequestRecord`] and pushes it here. Three rings, each bounded by
//! the same capacity, answer the three questions an operator asks of a
//! live daemon:
//!
//! * **recent** — the last N requests, in completion order;
//! * **slowest** — the N slowest requests seen so far (an insertion-
//!   sorted top-N, so "why was request X slow" survives long after X
//!   scrolled out of `recent`);
//! * **errors** — the last N requests that did not answer `ok` or
//!   `infeasible`.
//!
//! Records are cloned into every ring they qualify for; capacity bounds
//! memory regardless of daemon uptime. The `trace` op renders selected
//! records back into Chrome `trace_events` via the shared sink.

use eatss_trace::Event;
use std::collections::VecDeque;

/// One completed request, with the events harvested from its lane.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Client correlation id, when the request carried one.
    pub id: Option<String>,
    /// Kernel name (or `"<source>"` for inline programs).
    pub kernel: String,
    /// Trace lane the request's spans were recorded under.
    pub lane: u64,
    /// Wire outcome: `ok`, `infeasible`, `error`, `overloaded`,
    /// `shutting_down`.
    pub outcome: String,
    /// Cache disposition: `hit`, `miss`, `coalesced`, or `none`.
    pub cache: String,
    /// End-to-end request latency in microseconds.
    pub dur_us: u64,
    /// The request's span tree (Begin/End/Instant events, seq-sorted).
    pub events: Vec<Event>,
}

impl RequestRecord {
    /// Whether the request belongs in the error ring.
    fn is_error(&self) -> bool {
        self.outcome != "ok" && self.outcome != "infeasible"
    }
}

/// Which ring a `trace` op reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceWhich {
    /// Last N completed requests.
    Recent,
    /// Top-N slowest requests.
    Slowest,
    /// Last N non-`ok`/`infeasible` requests.
    Errors,
}

impl TraceWhich {
    /// Parses the wire name (`recent`/`slowest`/`errors`).
    pub fn parse(s: &str) -> Option<TraceWhich> {
        match s {
            "recent" => Some(TraceWhich::Recent),
            "slowest" => Some(TraceWhich::Slowest),
            "errors" => Some(TraceWhich::Errors),
            _ => None,
        }
    }
}

/// The bounded rings. One per server, behind a mutex — pushes happen
/// once per request *after* the response is written, off the latency
/// path.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    recent: VecDeque<RequestRecord>,
    /// Sorted by `dur_us` descending; truncated at `cap`.
    slowest: Vec<RequestRecord>,
    errors: VecDeque<RequestRecord>,
}

impl FlightRecorder {
    /// Rings retaining up to `cap` records each (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            recent: VecDeque::with_capacity(cap),
            slowest: Vec::with_capacity(cap),
            errors: VecDeque::new(),
        }
    }

    /// Records a completed request in every ring it qualifies for.
    pub fn push(&mut self, record: RequestRecord) {
        if record.is_error() {
            if self.errors.len() == self.cap {
                self.errors.pop_front();
            }
            self.errors.push_back(record.clone());
        }
        if self.slowest.len() < self.cap
            || record.dur_us > self.slowest.last().map_or(0, |r| r.dur_us)
        {
            let at = self
                .slowest
                .partition_point(|r| r.dur_us >= record.dur_us);
            self.slowest.insert(at, record.clone());
            self.slowest.truncate(self.cap);
        }
        if self.recent.len() == self.cap {
            self.recent.pop_front();
        }
        self.recent.push_back(record);
    }

    /// Total requests currently in the `recent` ring.
    pub fn len(&self) -> usize {
        self.recent.len()
    }

    /// Whether no request has completed yet.
    pub fn is_empty(&self) -> bool {
        self.recent.is_empty()
    }

    /// Copies up to `limit` records from the requested ring: `recent`
    /// and `errors` newest-first, `slowest` slowest-first.
    pub fn select(&self, which: TraceWhich, limit: usize) -> Vec<RequestRecord> {
        match which {
            TraceWhich::Recent => self.recent.iter().rev().take(limit).cloned().collect(),
            TraceWhich::Slowest => self.slowest.iter().take(limit).cloned().collect(),
            TraceWhich::Errors => self.errors.iter().rev().take(limit).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, dur_us: u64, outcome: &str) -> RequestRecord {
        RequestRecord {
            id: Some(id.to_string()),
            kernel: "gemm".to_string(),
            lane: id,
            outcome: outcome.to_string(),
            cache: "miss".to_string(),
            dur_us,
            events: Vec::new(),
        }
    }

    #[test]
    fn rings_stay_bounded_and_ordered() {
        let mut flight = FlightRecorder::new(3);
        for i in 0..10u64 {
            flight.push(record(i, i * 100, "ok"));
        }
        // Recent: last 3, newest first on select.
        let recent = flight.select(TraceWhich::Recent, 10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].id.as_deref(), Some("9"));
        assert_eq!(recent[2].id.as_deref(), Some("7"));
        // Slowest: top 3 by duration, slowest first.
        let slowest = flight.select(TraceWhich::Slowest, 10);
        assert_eq!(
            slowest.iter().map(|r| r.dur_us).collect::<Vec<_>>(),
            vec![900, 800, 700]
        );
        // No errors pushed.
        assert!(flight.select(TraceWhich::Errors, 10).is_empty());
    }

    #[test]
    fn slow_request_survives_recent_eviction() {
        let mut flight = FlightRecorder::new(2);
        flight.push(record(0, 9999, "ok"));
        for i in 1..5u64 {
            flight.push(record(i, 10, "ok"));
        }
        assert!(flight
            .select(TraceWhich::Recent, 10)
            .iter()
            .all(|r| r.dur_us == 10));
        assert_eq!(flight.select(TraceWhich::Slowest, 1)[0].dur_us, 9999);
    }

    #[test]
    fn errors_ring_only_holds_failures() {
        let mut flight = FlightRecorder::new(2);
        flight.push(record(0, 5, "ok"));
        flight.push(record(1, 5, "error"));
        flight.push(record(2, 5, "infeasible"));
        flight.push(record(3, 5, "overloaded"));
        flight.push(record(4, 5, "error"));
        let errors = flight.select(TraceWhich::Errors, 10);
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[0].id.as_deref(), Some("4"));
        assert_eq!(errors[1].id.as_deref(), Some("3"));
    }

    #[test]
    fn limit_and_which_parse() {
        let mut flight = FlightRecorder::new(8);
        for i in 0..5u64 {
            flight.push(record(i, i, "ok"));
        }
        assert_eq!(flight.select(TraceWhich::Slowest, 2).len(), 2);
        assert_eq!(flight.len(), 5);
        assert!(!flight.is_empty());
        assert_eq!(TraceWhich::parse("recent"), Some(TraceWhich::Recent));
        assert_eq!(TraceWhich::parse("slowest"), Some(TraceWhich::Slowest));
        assert_eq!(TraceWhich::parse("errors"), Some(TraceWhich::Errors));
        assert_eq!(TraceWhich::parse("fastest"), None);
    }
}
