//! Cross-crate observability tests: the `eatss-trace` layer wired through
//! the real solve → codegen → simulate pipeline.
//!
//! Trace collection is process-global, so every test here serializes on
//! `SESSION` (a poisoned lock is recovered — a failed test must not take
//! the rest of the suite down with it).

#![forbid(unsafe_code)]

use eatss::{Eatss, EatssConfig, SweepOptions};
use eatss_affine::parser::parse_program;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_trace::{EventKind, Provenance};
use proptest::prelude::*;
use std::sync::Mutex;

static SESSION: Mutex<()> = Mutex::new(());

fn session() -> std::sync::MutexGuard<'static, ()> {
    SESSION.lock().unwrap_or_else(|e| e.into_inner())
}

fn mm() -> Program {
    parse_program(
        "kernel mm(M, N, P) {
           for (i: M) for (j: N) for (k: P)
             C[i][j] += A[i][k] * B[k][j];
         }",
    )
    .expect("mm parses")
}

fn sizes(m: i64, n: i64, p: i64) -> ProblemSizes {
    ProblemSizes::new([("M", m), ("N", n), ("P", p)])
}

/// The registry is fed per-call deltas by the instrumented solver entry
/// points; their sum must equal the solver's own accumulated stats.
#[test]
fn registry_counters_match_solver_stats() {
    let _guard = session();
    let program = mm();
    let sz = sizes(2000, 2000, 2000);
    eatss_trace::start_collecting();
    let solution = Eatss::new(GpuArch::ga100())
        .select_tiles(&program, &sz, &EatssConfig::default())
        .expect("mm solves");
    let trace = eatss_trace::drain(Provenance::collect(None));
    let st = &solution.stats;
    assert!(st.nodes > 0, "solve did no search work");
    for (counter, expected) in [
        ("smt.checks", st.checks),
        ("smt.nodes", st.nodes),
        ("smt.propagations", st.propagations),
        ("smt.values_pruned", st.values_pruned),
        ("smt.backtracks", st.backtracks),
        ("smt.bound_prunes", st.bound_prunes),
        ("smt.hull_rebuilds", st.hull_rebuilds),
        ("smt.node_limit_hits", st.node_limit_hits),
        ("smt.deadline_hits", st.deadline_hits),
        ("smt.cancellations", st.cancellations),
    ] {
        assert_eq!(
            trace.metrics.counter(counter),
            expected,
            "registry `{counter}` disagrees with SolverStats"
        );
    }
    // Time counters accumulate per-call truncated microseconds, so they
    // can only undershoot the exact Duration — by less than 1us per call.
    let total_us = st.solve_time.as_micros() as u64;
    let flowed_us = trace.metrics.counter("smt.solve_time_us");
    assert!(
        flowed_us <= total_us && total_us - flowed_us <= st.checks,
        "smt.solve_time_us {flowed_us} vs exact {total_us} ({} checks)",
        st.checks
    );
}

/// A full selection + evaluation covers every pipeline stage, the span
/// stream is balanced, and the simulator spans nest under the pipeline's
/// `simulate` stage.
#[test]
fn full_pipeline_trace_covers_solve_codegen_simulate() {
    let _guard = session();
    let program = mm();
    let sz = sizes(512, 512, 512);
    let config = EatssConfig::default();
    let eatss = Eatss::new(GpuArch::ga100());
    eatss_trace::start_collecting();
    let solution = eatss
        .select_tiles(&program, &sz, &config)
        .expect("mm solves");
    let report = eatss
        .evaluate(&program, &solution.tiles, &sz, &config)
        .expect("mm evaluates");
    let trace = eatss_trace::drain(Provenance::collect(None));
    assert!(report.valid);
    trace.check_balance().expect("balanced spans");

    let names = trace.span_names();
    for (cat, name) in [
        ("eatss", "solve"),
        ("pipeline", "codegen"),
        ("pipeline", "simulate"),
        ("ppcg", "compile"),
        ("ppcg", "map"),
        ("ppcg", "codegen"),
        ("ppcg", "hostgen"),
        ("sim", "launch"),
        ("sim", "occupancy"),
        ("sim", "timing"),
        ("sim", "power"),
    ] {
        assert!(
            names.contains(&(cat.to_string(), name.to_string())),
            "missing span {cat}:{name} (got {names:?})"
        );
    }

    // Walk a sim:launch span's parent chain: it must pass through the
    // pipeline-level simulate stage before reaching the root.
    let mut parents = std::collections::BTreeMap::new();
    let mut spans = std::collections::BTreeMap::new();
    for e in &trace.events {
        if let EventKind::Begin { id, parent } = e.kind {
            parents.insert(id, parent);
            spans.insert(id, (e.cat, e.name.clone()));
        }
    }
    let (launch_id, _) = spans
        .iter()
        .find(|(_, (cat, name))| *cat == "sim" && name == "launch")
        .expect("a sim:launch span");
    let mut cursor = *launch_id;
    let mut chain = Vec::new();
    while cursor != 0 {
        chain.push(spans[&cursor].1.clone());
        cursor = parents[&cursor];
    }
    assert!(
        chain.iter().any(|n| n == "simulate"),
        "sim:launch does not nest under pipeline:simulate: {chain:?}"
    );

    // The Chrome serialization must be well-formed JSON with a non-empty
    // event array and stamped provenance.
    let doc = eatss_trace::json::Json::parse(&trace.to_chrome_json()).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert!(doc
        .get("otherData")
        .and_then(|v| v.get("provenance"))
        .and_then(|v| v.get("git_sha"))
        .is_some());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// PR 2's bit-identical parallel-sweep guarantee extends to traces:
    /// the canonical `(lane, seq)` merge makes the structural signature of
    /// a `--jobs 4` sweep identical to the sequential one.
    #[test]
    fn parallel_sweep_trace_matches_sequential(
        m in 128i64..640,
        n in 128i64..640,
        p in 128i64..640,
    ) {
        let _guard = session();
        let program = mm();
        let sz = sizes(m, n, p);
        let eatss = Eatss::new(GpuArch::ga100());
        let splits = [0.5, 0.25];
        let fracs = [0.5];

        let seq_opts = SweepOptions { jobs: 1, ..SweepOptions::default() };
        eatss_trace::start_collecting();
        let seq = eatss.sweep_with(&program, &sz, &splits, &fracs, &seq_opts);
        let seq_trace = eatss_trace::drain(Provenance::collect(Some(1)));

        let par_opts = SweepOptions { jobs: 4, ..SweepOptions::default() };
        eatss_trace::start_collecting();
        let par = eatss.sweep_with(&program, &sz, &splits, &fracs, &par_opts);
        let par_trace = eatss_trace::drain(Provenance::collect(Some(4)));

        prop_assert_eq!(seq.is_ok(), par.is_ok());
        prop_assert_eq!(seq_trace.signature(), par_trace.signature());
        // Wall-clock counters (`*_us`) vary run to run; every discrete
        // counter must agree exactly.
        let discrete = |t: &eatss_trace::Trace| -> std::collections::BTreeMap<String, u64> {
            t.metrics
                .counters
                .iter()
                .filter(|(k, _)| !k.ends_with("_us"))
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        };
        prop_assert_eq!(discrete(&seq_trace), discrete(&par_trace));
        prop_assert!(seq_trace.check_balance().is_ok());
        prop_assert!(par_trace.check_balance().is_ok());
        if let (Ok(seq), Ok(par)) = (seq, par) {
            prop_assert_eq!(seq.points.len(), par.points.len());
        }
    }
}
