//! Differential proof for the compiled execution plans: the fast paths
//! — the plan-backed affine interpreter ([`eatss_affine::interp`]) and
//! the GPU emulator's plan engine ([`eatss_ppcg::ExecEngine::Plan`]) —
//! must reproduce the retained tree-walking references **bitwise**, with
//! identical execution counters, for every PolyBench kernel across the
//! pinned adversarial tile configurations and seeded random samples.
//!
//! The benchmark `bench_oracle` in `eatss-bench` measures the same pairs
//! it proves equal here.

use eatss_affine::interp::{self, compare_stores, Store};
use eatss_affine::plan::set_simd_enabled;
use eatss_affine::tiling::{TileConfig, TiledNest};
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_ppcg::oracle::{sample_tile_config, sweep_rng, verify_sizes};
use eatss_ppcg::{
    execute_compiled, seed_store, CompileOptions, ExecEngine, ExecOptions, Ppcg,
};
use proptest::prelude::*;

const SEED: u64 = 0xEA75_50AC;

fn shrunk(program: &Program, sizes: &ProblemSizes) -> ProblemSizes {
    // Deep nests get smaller spatial extents to bound point counts.
    let cap = if program.max_depth() >= 4 { 7 } else { 13 };
    verify_sizes(program, sizes, cap, 2)
}

/// Max trip count per dim position across kernels — the sampling domain.
fn trips(program: &Program, sizes: &ProblemSizes) -> Vec<i64> {
    let mut out = vec![1i64; program.max_depth()];
    for k in &program.kernels {
        for (d, slot) in out.iter_mut().enumerate().take(k.depth()) {
            *slot = (*slot).max(k.trip_count(d, sizes).unwrap_or(1));
        }
    }
    out
}

/// The adversarial configurations PR 4's codegen oracle pinned, plus
/// seeded random samples: single-element tiles, primes (nothing divides
/// anything), tiles one past the trip count (a single ragged block).
fn adversarial_tiles(depth: usize, trips: &[i64], random: usize, seed: u64) -> Vec<TileConfig> {
    let primes = [3i64, 5, 7, 11, 13];
    let mut tiles = vec![
        TileConfig::ppcg_default(depth),
        TileConfig::new(vec![1; depth]),
        TileConfig::new((0..depth).map(|d| primes[d % primes.len()]).collect()),
        TileConfig::new(trips.iter().map(|t| t + 1).collect()),
    ];
    let mut rng = sweep_rng(seed);
    for _ in 0..random {
        tiles.push(sample_tile_config(&mut rng, trips));
    }
    tiles
}

fn assert_bitwise(label: &str, got: &Store, want: &Store) {
    let mismatches = compare_stores(got, want);
    assert!(
        mismatches.is_empty(),
        "{label}: stores diverge: {}",
        mismatches[0]
    );
}

/// The plan-backed interpreter reproduces the tree-walker bitwise on
/// untiled whole-program runs.
#[test]
fn compiled_interp_matches_reference_on_polybench() {
    for bench in eatss_kernels::polybench() {
        let program = bench.program().expect("registry parses");
        let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
        let mut fast = seed_store(&program, &sizes, SEED).expect("store seeds");
        let mut reference = seed_store(&program, &sizes, SEED).expect("store seeds");
        interp::run_program(&program, &sizes, &mut fast).expect("fast interp");
        interp::reference::run_program(&program, &sizes, &mut reference).expect("reference interp");
        assert_bitwise(bench.name, &fast, &reference);
    }
}

/// The plan-backed tiled interpreter reproduces the tree-walker bitwise
/// across adversarial and random tile configurations (non-divisible
/// boundaries, degenerate tiles, single ragged blocks).
#[test]
fn compiled_tiled_interp_matches_reference_on_adversarial_tiles() {
    for bench in eatss_kernels::polybench() {
        let program = bench.program().expect("registry parses");
        let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
        let trips = trips(&program, &sizes);
        for (c, tiles) in adversarial_tiles(program.max_depth(), &trips, 4, SEED)
            .iter()
            .enumerate()
        {
            let mut fast = seed_store(&program, &sizes, SEED).expect("store seeds");
            let mut reference = seed_store(&program, &sizes, SEED).expect("store seeds");
            for kernel in &program.kernels {
                let nest = match TiledNest::new(kernel, tiles) {
                    Ok(nest) => nest,
                    // Tile vectors shorter than a kernel's depth are a
                    // configuration error, not an execution case.
                    Err(_) => continue,
                };
                interp::run_kernel_tiled(&nest, &sizes, &mut fast).expect("fast tiled interp");
                interp::reference::run_kernel_tiled(&nest, &sizes, &mut reference)
                    .expect("reference tiled interp");
            }
            assert_bitwise(&format!("{} config {c} ({tiles})", bench.name), &fast, &reference);
        }
    }
}

/// The emulator's plan engine reproduces its reference engine bitwise —
/// same stores *and* identical execution counters — across adversarial
/// and random configurations of every mappable PolyBench kernel.
#[test]
fn plan_engine_matches_reference_engine_on_adversarial_tiles() {
    let arch = GpuArch::ga100();
    let ppcg = Ppcg::new(arch);
    for bench in eatss_kernels::polybench() {
        let program = bench.program().expect("registry parses");
        let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
        let trips = trips(&program, &sizes);
        for (c, tiles) in adversarial_tiles(program.max_depth(), &trips, 4, SEED)
            .iter()
            .enumerate()
        {
            let compiled = match ppcg.compile(&program, tiles, &sizes, &CompileOptions::default()) {
                Ok(compiled) => compiled,
                // Unmappable configurations are covered by the mapping
                // tests; there is nothing to execute here.
                Err(_) => continue,
            };
            let label = format!("{} config {c} ({tiles})", bench.name);
            let mut fast = seed_store(&program, &sizes, SEED).expect("store seeds");
            let mut reference = seed_store(&program, &sizes, SEED).expect("store seeds");
            let fast_stats = execute_compiled(
                &program,
                &compiled.mappings,
                &sizes,
                &mut fast,
                &ExecOptions {
                    engine: ExecEngine::Plan,
                    ..ExecOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{label}: plan engine: {e}"));
            let ref_opts = ExecOptions {
                engine: ExecEngine::Reference,
                ..ExecOptions::default()
            };
            let ref_stats =
                execute_compiled(&program, &compiled.mappings, &sizes, &mut reference, &ref_opts)
                    .unwrap_or_else(|e| panic!("{label}: reference engine: {e}"));
            assert_eq!(
                fast_stats, ref_stats,
                "{label}: execution counters diverge"
            );
            assert_bitwise(&label, &fast, &reference);
        }
    }
}

/// Serializes `set_simd_enabled` flips across this binary's threads —
/// the vector/scalar comparisons are only meaningful while the global
/// flag holds still. (Every *other* test here is valid under either
/// setting, so only these tests need the lock.)
static SIMD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs both fast paths — the tiled plan interpreter and, where the
/// configuration is mappable, the emulator's plan engine — with the
/// chunked (SIMD-style) row loop forced on or off.
fn run_fast_paths(
    program: &Program,
    sizes: &ProblemSizes,
    tiles: &TileConfig,
    simd: bool,
) -> Vec<Store> {
    set_simd_enabled(simd);
    let mut out = Vec::new();
    let mut store = seed_store(program, sizes, SEED).expect("store seeds");
    for kernel in &program.kernels {
        if let Ok(nest) = TiledNest::new(kernel, tiles) {
            interp::run_kernel_tiled(&nest, sizes, &mut store).expect("tiled interp");
        }
    }
    out.push(store);
    let ppcg = Ppcg::new(GpuArch::ga100());
    if let Ok(compiled) = ppcg.compile(program, tiles, sizes, &CompileOptions::default()) {
        let mut store = seed_store(program, sizes, SEED).expect("store seeds");
        let opts = ExecOptions {
            engine: ExecEngine::Plan,
            ..ExecOptions::default()
        };
        execute_compiled(program, &compiled.mappings, sizes, &mut store, &opts)
            .expect("plan engine");
        out.push(store);
    }
    set_simd_enabled(true);
    out
}

/// The chunked row loop reproduces the scalar loop bitwise on both fast
/// paths, across the pinned adversarial tiles plus tiles of 2 and 3 —
/// shapes whose every row ends in a tail shorter than a lane (or *is*
/// one).
#[test]
fn simd_rows_match_scalar_rows_on_adversarial_tiles() {
    let _guard = SIMD_LOCK.lock().unwrap();
    for bench in eatss_kernels::polybench() {
        let program = bench.program().expect("registry parses");
        let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
        let trips = trips(&program, &sizes);
        let depth = program.max_depth();
        let mut configs = adversarial_tiles(depth, &trips, 2, SEED ^ 1);
        configs.push(TileConfig::new(vec![2; depth]));
        configs.push(TileConfig::new(vec![3; depth]));
        for (c, tiles) in configs.iter().enumerate() {
            let vector = run_fast_paths(&program, &sizes, tiles, true);
            let scalar = run_fast_paths(&program, &sizes, tiles, false);
            assert_eq!(vector.len(), scalar.len());
            for (path, (v, s)) in vector.iter().zip(&scalar).enumerate() {
                assert_bitwise(
                    &format!("{} config {c} ({tiles}) path {path} simd-vs-scalar", bench.name),
                    v,
                    s,
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random tiles over random kernels: both fast paths stay bitwise
    /// equal to their references.
    #[test]
    fn compiled_paths_match_references_on_random_tiles(
        kernel_idx in 0usize..17,
        tile_seed in 0u64..1u64 << 32,
    ) {
        let benches = eatss_kernels::polybench();
        let bench = &benches[kernel_idx % benches.len()];
        let program = bench.program().expect("registry parses");
        let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
        let trips = trips(&program, &sizes);
        let mut rng = sweep_rng(tile_seed);
        let tiles = sample_tile_config(&mut rng, &trips);

        // Tiled interpretation.
        let mut fast = seed_store(&program, &sizes, SEED).expect("store seeds");
        let mut reference = seed_store(&program, &sizes, SEED).expect("store seeds");
        for kernel in &program.kernels {
            if let Ok(nest) = TiledNest::new(kernel, &tiles) {
                interp::run_kernel_tiled(&nest, &sizes, &mut fast).expect("fast tiled interp");
                interp::reference::run_kernel_tiled(&nest, &sizes, &mut reference)
                    .expect("reference tiled interp");
            }
        }
        assert_bitwise(&format!("{} interp ({tiles})", bench.name), &fast, &reference);

        // Emulated execution.
        let ppcg = Ppcg::new(GpuArch::ga100());
        if let Ok(compiled) = ppcg.compile(&program, &tiles, &sizes, &CompileOptions::default()) {
            let mut fast = seed_store(&program, &sizes, SEED).expect("store seeds");
            let mut reference = seed_store(&program, &sizes, SEED).expect("store seeds");
            let plan_opts = ExecOptions {
                engine: ExecEngine::Plan,
                ..ExecOptions::default()
            };
            let fast_stats = execute_compiled(
                &program, &compiled.mappings, &sizes, &mut fast, &plan_opts,
            ).expect("plan engine");
            let ref_opts = ExecOptions {
                engine: ExecEngine::Reference,
                ..ExecOptions::default()
            };
            let ref_stats = execute_compiled(
                &program, &compiled.mappings, &sizes, &mut reference, &ref_opts,
            ).expect("reference engine");
            prop_assert_eq!(fast_stats, ref_stats);
            assert_bitwise(&format!("{} emulator ({tiles})", bench.name), &fast, &reference);
        }
    }

    /// Random *small* tiles (1..=6) force rows that are pure tails,
    /// exact chunks, and chunk-plus-tail mixes: the chunked row loop
    /// stays bitwise identical to the scalar loop on both fast paths.
    #[test]
    fn simd_rows_match_scalar_rows_on_random_small_tiles(
        kernel_idx in 0usize..17,
        dims in proptest::collection::vec(1i64..=6, 10),
    ) {
        let _guard = SIMD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let benches = eatss_kernels::polybench();
        let bench = &benches[kernel_idx % benches.len()];
        let program = bench.program().expect("registry parses");
        let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
        let tiles = TileConfig::new(dims[..program.max_depth()].to_vec());
        let vector = run_fast_paths(&program, &sizes, &tiles, true);
        let scalar = run_fast_paths(&program, &sizes, &tiles, false);
        prop_assert_eq!(vector.len(), scalar.len());
        for (path, (v, s)) in vector.iter().zip(&scalar).enumerate() {
            assert_bitwise(
                &format!("{} ({tiles}) path {path} simd-vs-scalar", bench.name),
                v,
                s,
            );
        }
    }
}
