//! Fault-tolerance of the solve → compile → measure pipeline: anytime
//! solving under deadlines, graceful degradation to PPCG's default `32^d`
//! tiling, and deterministic fault injection in the GPU model.

use eatss::{
    Eatss, EatssConfig, PipelineError, PipelineStage, SolutionProvenance, SolveAttempt,
    SweepOptions,
};
use eatss_affine::parser::parse_program;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::{FaultKind, FaultPlan, Gpu, GpuArch};
use eatss_smt::{IntExpr, Solver, SolverConfig, StopReason};
use std::collections::HashSet;
use std::time::Duration;

fn mm() -> Program {
    parse_program(
        "kernel mm(M, N, P) {
           for (i: M) for (j: N) for (k: P)
             C[i][j] += A[i][k] * B[k][j];
         }",
    )
    .unwrap()
}

/// The §IV-A matmul formulation (GA100, FP64, 50 % split) at an explicit
/// warp-alignment factor.
fn matmul_formulation(config: SolverConfig, waf: i64) -> (Solver, IntExpr) {
    let mut s = Solver::with_config(config);
    let cap = 12_288;
    let ti = s.int_var("Ti", 1, 1024);
    let tj = s.int_var("Tj", 1, 1024);
    let tk = s.int_var("Tk", 1, 1024);
    for t in [&ti, &tj, &tk] {
        s.assert(t.modulo(waf).eq_expr(0));
    }
    let bsize = ti.clone() * tj.clone();
    s.assert((bsize.clone() * IntExpr::constant(3) * IntExpr::constant(2)).le(65_536));
    s.assert((ti.clone() * tj.clone() + tk.clone() * tj.clone()).le(cap));
    s.assert((ti * tk).le(cap));
    let obj = bsize + IntExpr::constant(2 * 16) * tj;
    (s, obj)
}

#[test]
fn maximize_under_deadline_is_anytime_on_matmul() {
    // Acceptance criterion: a 10 ms wall-clock budget on the matmul
    // formulation returns a feasible model with `complete == false`
    // rather than erroring or blocking. The waf=2 space (512 candidate
    // values per variable) is far too large to prove optimal in 10 ms in
    // any build profile, but first models arrive almost immediately.
    let (mut s, obj) = matmul_formulation(
        SolverConfig {
            deadline: Some(Duration::from_millis(10)),
            ..SolverConfig::default()
        },
        2,
    );
    let out = s.maximize(&obj).unwrap();
    assert!(!out.complete);
    assert!(!out.optimal);
    assert_eq!(out.stop, Some(StopReason::Deadline));
    let m = out.model.expect("anytime: best-so-far model returned");
    let (i, j, k) = (
        m.value_of_name("Ti").unwrap(),
        m.value_of_name("Tj").unwrap(),
        m.value_of_name("Tk").unwrap(),
    );
    assert!(i % 2 == 0 && j % 2 == 0 && k % 2 == 0);
    assert!(i * j * 6 <= 65_536);
    assert!(i * j + k * j <= 12_288);
    assert!(i * k <= 12_288);
    assert_eq!(out.best.unwrap(), i * j + 32 * j);
}

#[test]
fn fault_injected_sweep_exercises_all_provenances() {
    // One device, one policy, two sweeps: large sizes produce fully
    // solved (waf=16) and deadline-truncated anytime (waf=2) points;
    // tiny sizes prove waf=32 infeasible and degrade to the 32^3
    // fallback — whose launch the fault plan poisons with NaNs.
    let plan = FaultPlan::new(42).force("mm(32, 32, 32)", FaultKind::NanReport);
    let eatss = Eatss::with_gpu(Gpu::with_faults(GpuArch::ga100(), plan));
    let opts = SweepOptions {
        attempts: vec![SolveAttempt {
            node_limit: 50_000_000,
            deadline: Some(Duration::from_millis(50)),
            coarsen: false,
        }],
        fallback_to_default: true,
        ..SweepOptions::default()
    };
    let program = mm();

    let large = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
    let out_large = eatss
        .sweep_with(&program, &large, &[0.5], &[0.5, 0.0625], &opts)
        .unwrap();
    assert_eq!(out_large.points.len(), 4);
    assert!(out_large.infeasible.is_empty() && out_large.failures.is_empty());

    let tiny = ProblemSizes::new([("M", 8), ("N", 8), ("P", 8)]);
    let out_tiny = eatss
        .sweep_with(&program, &tiny, &[0.5], &[1.0], &opts)
        .unwrap();
    assert_eq!(out_tiny.infeasible.len(), 2, "waf=32 proved infeasible");
    assert_eq!(out_tiny.points.len(), 2, "both degrade to measurable fallbacks");

    let provenances: HashSet<SolutionProvenance> = out_large
        .points
        .iter()
        .chain(&out_tiny.points)
        .map(|p| p.solution.provenance)
        .collect();
    assert!(provenances.contains(&SolutionProvenance::Solved), "{provenances:?}");
    assert!(
        provenances.contains(&SolutionProvenance::SolvedIncomplete),
        "waf=2 under a 50 ms deadline must stay anytime: {provenances:?}"
    );
    assert!(provenances.contains(&SolutionProvenance::DefaultFallback), "{provenances:?}");

    // Anytime points carry feasible (warp-aligned) tiles.
    for p in out_large
        .points
        .iter()
        .filter(|p| p.solution.provenance == SolutionProvenance::SolvedIncomplete)
    {
        assert!(p.solution.tiles.sizes().iter().all(|t| t % 2 == 0));
        assert!(!p.solution.optimal);
        assert!(p.report.valid);
    }

    // The forced NaN fault hit the fallback launches: the reports look
    // valid but every rate metric is poisoned...
    for p in &out_tiny.points {
        assert_eq!(p.solution.provenance, SolutionProvenance::DefaultFallback);
        assert_eq!(p.solution.tiles.sizes(), &[32, 32, 32]);
        assert!(p.report.valid);
        assert!(p.report.gflops.is_nan());
        assert!(p.report.energy_j.is_nan());
    }
    // ...and the best-point selectors skip them instead of panicking
    // (regression: `partial_cmp(..).expect(..)` used to panic on NaN).
    assert!(out_tiny.best_by_perf().is_none());
    assert!(out_tiny.best_by_energy().is_none());
}

#[test]
fn launch_faults_surface_as_measure_failures() {
    // Every launch fails: solved points and fallbacks alike are
    // unmeasurable, so the sweep reports a stage-attributed error
    // instead of panicking or returning an empty outcome.
    let plan = FaultPlan::new(7).with_rates(1.0, 0.0, 0.0);
    let eatss = Eatss::with_gpu(Gpu::with_faults(GpuArch::ga100(), plan));
    let program = mm();
    let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);

    let report = eatss.evaluate(
        &program,
        &eatss_affine::tiling::TileConfig::ppcg_default(3),
        &sizes,
        &EatssConfig::default(),
    );
    let e = report.unwrap_err();
    assert!(e.to_string().contains("measurement failed"), "{e}");
    assert_eq!(
        PipelineError::from_evaluate(e, "mm").stage(),
        PipelineStage::Measure
    );

    let err = eatss.sweep(&program, &sizes, &[0.5], &[0.5]).unwrap_err();
    match err {
        PipelineError::NoMeasurablePoint { attempted, .. } => assert_eq!(attempted, 2),
        other => panic!("expected NoMeasurablePoint, got {other}"),
    }
    assert_eq!(err.stage(), PipelineStage::Measure);
}

#[test]
fn nan_faults_never_panic_the_selectors() {
    // A 100 % NaN-fault device: the sweep completes, every report is
    // poisoned, and the throughput/energy selectors return None rather
    // than panicking. (PPW collapses to 0 because the power term is NaN,
    // so best_by_ppw still selects — but only among finite values.)
    let plan = FaultPlan::new(3).with_rates(0.0, 0.0, 1.0);
    let eatss = Eatss::with_gpu(Gpu::with_faults(GpuArch::ga100(), plan));
    let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
    let out = eatss.sweep(&mm(), &sizes, &[0.5], &[0.5]).unwrap();
    assert_eq!(out.points.len(), 2);
    assert!(out.points.iter().all(|p| p.report.gflops.is_nan()));
    assert!(out.best_by_perf().is_none());
    assert!(out.best_by_energy().is_none());
    if let Some(best) = out.best_by_ppw() {
        assert!(best.report.ppw.is_finite());
    }
}

#[test]
fn exhausted_ladder_degrades_instead_of_failing() {
    // Acceptance criterion: a sweep containing an unsolvable point
    // completes without panicking and yields a measurable DefaultFallback
    // point with 32^d tiles. Here *every* point is unsolvable because the
    // ladder's only rung has a zero node budget.
    let eatss = Eatss::new(GpuArch::ga100());
    let sizes = ProblemSizes::new([("M", 2000), ("N", 2000), ("P", 2000)]);
    let opts = SweepOptions {
        attempts: vec![SolveAttempt {
            node_limit: 0,
            deadline: None,
            coarsen: false,
        }],
        fallback_to_default: true,
        ..SweepOptions::default()
    };
    let out = eatss
        .sweep_with(&mm(), &sizes, &[0.5], &[0.5], &opts)
        .unwrap();
    assert_eq!(out.points.len(), 2);
    for p in &out.points {
        assert_eq!(p.solution.provenance, SolutionProvenance::DefaultFallback);
        assert_eq!(p.solution.tiles.sizes(), &[32, 32, 32]);
        assert!(p.report.valid && p.report.ppw.is_finite());
    }
    assert_eq!(out.infeasible.len(), 2);
    assert!(out.best_by_ppw().is_some());
}
