//! Warm- vs cold-solve differential tests across the full PolyBench
//! suite: a [`WarmStart`] floor may only remove provably-suboptimal
//! search work, so warm solves must return the *same* verdicts, optima
//! and tiles as cold solves on every formulation — including infeasible
//! ones, and including hint sets polluted with models from foreign
//! benchmarks.

use eatss::{EatssConfig, EatssError, ModelGenerator};
use eatss_gpusim::GpuArch;
use eatss_kernels::{polybench, Dataset};
use eatss_smt::WarmStart;

/// A solve outcome reduced to what warm starting must preserve
/// (`solver_calls` and the work counters legitimately differ).
#[derive(Debug, PartialEq)]
enum Verdict {
    Solved {
        tiles: Vec<i64>,
        objective: i64,
        optimal: bool,
    },
    Infeasible(String),
}

fn solve(
    arch: &GpuArch,
    program: &eatss_affine::Program,
    sizes: &eatss_affine::ProblemSizes,
    warm: Option<&mut WarmStart>,
) -> Verdict {
    let model = ModelGenerator::new(arch, EatssConfig::default())
        .build(program, Some(sizes))
        .expect("formulation builds");
    let result = match warm {
        Some(warm) => model.solve_warm(warm),
        None => model.solve(),
    };
    match result {
        Ok(s) => Verdict::Solved {
            tiles: s.tiles.sizes().to_vec(),
            objective: s.objective,
            optimal: s.optimal,
        },
        Err(EatssError::Unsatisfiable { reason }) => Verdict::Infeasible(reason),
        Err(e) => panic!("unexpected solve error: {e}"),
    }
}

/// Every PolyBench formulation solves to the same verdict warm and cold:
/// once seeded with its own optimum (the tightest possible floor), and
/// once through a hint set accumulated across *all* benchmarks — foreign
/// hints with matching `T{d}` names are either feasible (a valid cut) or
/// skipped, never able to change the result.
#[test]
fn warm_solves_match_cold_across_polybench() {
    let arch = GpuArch::ga100();
    let suite = polybench();
    assert_eq!(suite.len(), 17);

    let mut shared = WarmStart::new();
    let mut cold_verdicts = Vec::new();
    for b in &suite {
        let program = b.program().expect("benchmark parses");
        let sizes = b.sizes(Dataset::ExtraLarge);
        let cold = solve(&arch, &program, &sizes, None);

        // Self-seeded: first warm call observes the optimum, second call
        // starts with floor = optimum - 1 and must return it again.
        let mut own = WarmStart::new();
        let first = solve(&arch, &program, &sizes, Some(&mut own));
        assert_eq!(first, cold, "{}: empty-hint warm differs from cold", b.name);
        let seeded = solve(&arch, &program, &sizes, Some(&mut own));
        assert_eq!(seeded, cold, "{}: self-seeded warm differs from cold", b.name);

        // Feed the cross-benchmark hint pool for the second pass.
        let _ = solve(&arch, &program, &sizes, Some(&mut shared));
        cold_verdicts.push((b.name, program, sizes, cold));
    }

    // Second pass: every benchmark re-solved against hints from the whole
    // suite (bounded to the most recent observations by WarmStart's ring).
    for (name, program, sizes, cold) in &cold_verdicts {
        let mut polluted = shared.clone();
        let warm = solve(&arch, program, sizes, Some(&mut polluted));
        assert_eq!(&warm, cold, "{name}: cross-benchmark hints changed the verdict");
    }
}
