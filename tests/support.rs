//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use eatss_affine::{ProblemSizes, Program};
use eatss_kernels::{Benchmark, Dataset};

/// Parses a registered benchmark and returns its program plus the sizes
/// for the given dataset.
///
/// # Panics
///
/// Panics if the benchmark is missing or fails to parse — both indicate
/// a corrupted registry, which integration tests should surface loudly.
pub fn load(name: &str, dataset: Dataset) -> (Program, ProblemSizes) {
    let b: Benchmark = eatss_kernels::by_name(name)
        .unwrap_or_else(|| panic!("benchmark `{name}` not in registry"));
    let program = b
        .program()
        .unwrap_or_else(|e| panic!("benchmark `{name}` failed to parse: {e}"));
    let sizes = b.sizes(dataset);
    (program, sizes)
}
