//! Differential execution oracle over the whole benchmark suite: for
//! every PolyBench program, the emulated GPU execution of the compiled
//! mapping must agree bitwise with the affine interpreter — across the
//! PPCG 32^d default, EATSS-selected tiles, seeded random samples of the
//! tile space, and pinned adversarial configurations (single-element
//! tiles, primes, tiles exceeding the trip count).
//!
//! Problem sizes are shrunk so exhaustive interpretation stays fast; the
//! `oracle_sweep` release binary in `eatss-bench` runs the same check on
//! larger samples.

use eatss::{Eatss, EatssConfig};
use eatss_affine::tiling::TileConfig;
use eatss_affine::{ProblemSizes, Program};
use eatss_gpusim::GpuArch;
use eatss_ppcg::oracle::{sample_tile_config, sweep_rng, verify_sizes};
use eatss_ppcg::{verify, OracleOptions};

const SEED: u64 = 0xEA75_50AC;

fn shrunk(program: &Program, sizes: &ProblemSizes) -> ProblemSizes {
    // Deep nests get smaller spatial extents to bound point counts.
    let cap = if program.max_depth() >= 4 { 7 } else { 13 };
    verify_sizes(program, sizes, cap, 2)
}

/// Max trip count per dim position across kernels — the sampling domain.
fn trips(program: &Program, sizes: &ProblemSizes) -> Vec<i64> {
    let mut out = vec![1i64; program.max_depth()];
    for k in &program.kernels {
        for (d, slot) in out.iter_mut().enumerate().take(k.depth()) {
            *slot = (*slot).max(k.trip_count(d, sizes).unwrap_or(1));
        }
    }
    out
}

fn check(name: &str, program: &Program, tiles: &TileConfig, sizes: &ProblemSizes) {
    let report = verify(
        program,
        tiles,
        &GpuArch::ga100(),
        sizes,
        &OracleOptions::default(),
        SEED,
    )
    .unwrap_or_else(|e| panic!("{name} tiles {tiles}: {e}"));
    assert!(report.points > 0, "{name}: oracle executed nothing");
}

#[test]
fn polybench_agrees_on_default_and_adversarial_tiles() {
    for bench in eatss_kernels::polybench() {
        let program = bench.program().expect("registry parses");
        let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
        let depth = program.max_depth();
        let trips = trips(&program, &sizes);
        // PPCG default.
        check(bench.name, &program, &TileConfig::ppcg_default(depth), &sizes);
        // Single-element tiles: every min guard and point loop degenerate.
        check(bench.name, &program, &TileConfig::new(vec![1; depth]), &sizes);
        // Primes: nothing divides anything.
        let primes = [3, 5, 7, 11, 13];
        check(
            bench.name,
            &program,
            &TileConfig::new((0..depth).map(|d| primes[d % primes.len()]).collect()),
            &sizes,
        );
        // Tiles one past the trip count: a single ragged block per dim.
        check(
            bench.name,
            &program,
            &TileConfig::new(trips.iter().map(|t| t + 1).collect()),
            &sizes,
        );
    }
}

#[test]
fn polybench_agrees_on_seeded_random_tiles() {
    let mut rng = sweep_rng(SEED);
    for bench in eatss_kernels::polybench() {
        let program = bench.program().expect("registry parses");
        let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
        let trips = trips(&program, &sizes);
        for round in 0..4 {
            let tiles = sample_tile_config(&mut rng, &trips);
            let label = format!("{} (random round {round})", bench.name);
            check(&label, &program, &tiles, &sizes);
        }
    }
}

#[test]
fn eatss_selected_tiles_agree() {
    // Solve at the standard dataset (the realistic shapes the selection
    // targets), then verify the chosen tiles on shrunk sizes.
    let eatss = Eatss::new(GpuArch::ga100());
    for name in ["gemm", "syrk", "doitgen", "jacobi-2d", "conv-2d", "mttkrp"] {
        let bench = eatss_kernels::by_name(name).expect("registered");
        let program = bench.program().expect("parses");
        let std_sizes = bench.sizes(eatss_kernels::Dataset::Standard);
        let solution = match eatss.select_tiles(&program, &std_sizes, &EatssConfig::default()) {
            Ok(s) => s,
            // §V-D "missing configurations": some benchmarks are genuinely
            // unsatisfiable under the default warp alignment. Nothing to
            // verify then — the sweep still covers them with other tiles.
            Err(eatss::EatssError::Unsatisfiable { .. }) => continue,
            Err(e) => panic!("{name}: selection failed: {e}"),
        };
        let sizes = shrunk(&program, &std_sizes);
        check(&format!("{name} (EATSS tiles)"), &program, &solution.tiles, &sizes);
    }
}

#[test]
fn oracle_catches_a_wrong_execution() {
    // Sanity for the oracle itself: skipping the staging load barrier is
    // a wrong execution, and the oracle must report a mismatch for a
    // kernel that stages through shared memory.
    let bench = eatss_kernels::by_name("gemm").expect("registered");
    let program = bench.program().expect("parses");
    let sizes = shrunk(&program, &bench.sizes(eatss_kernels::Dataset::Standard));
    let opts = OracleOptions {
        exec: eatss_ppcg::ExecOptions {
            barrier_fidelity: eatss_ppcg::BarrierFidelity::SkipLoadBarrier,
            ..eatss_ppcg::ExecOptions::default()
        },
        ..OracleOptions::default()
    };
    let err = verify(
        &program,
        &TileConfig::ppcg_default(program.max_depth()),
        &GpuArch::ga100(),
        &sizes,
        &opts,
        SEED,
    )
    .expect_err("a barrier-less execution must be flagged");
    assert!(
        matches!(err, eatss_ppcg::OracleError::Mismatch { .. }),
        "unexpected failure kind: {err}"
    );
}
