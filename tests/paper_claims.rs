//! Integration tests pinning the paper's qualitative claims — the
//! "shape" of every headline result the reproduction must preserve.

use eatss::sweep::{PAPER_SPLITS, PAPER_WARP_FRACTIONS};
use eatss::{Eatss, EatssConfig};
use eatss_affine::tiling::TileConfig;
use eatss_gpusim::{stats, GpuArch};
use eatss_integration::load;
use eatss_kernels::Dataset;
use eatss_ppcg::{CompileOptions, TileSpace};

fn best_vs_default(
    arch: &GpuArch,
    name: &str,
    dataset: Dataset,
    splits: &[f64],
    fractions: &[f64],
) -> (f64, f64) {
    let eatss = Eatss::new(arch.clone());
    let (program, sizes) = load(name, dataset);
    let sweep = eatss
        .sweep(&program, &sizes, splits, fractions)
        .expect("feasible sweep");
    let best = sweep.best_by_ppw().expect("valid point");
    let default = eatss
        .evaluate(
            &program,
            &TileConfig::ppcg_default(program.max_depth()),
            &sizes,
            &best.config,
        )
        .expect("default compiles");
    (
        default.time_s / best.report.time_s,
        best.report.ppw / default.ppw,
    )
}

/// §IV-A worked example: the GA100/FP64/50%-split/WAF-16 matmul
/// formulation selects the paper's exact tiles (16, 384, 16) when the
/// problem size admits them.
#[test]
fn paper_worked_example_exact_tiles() {
    let eatss = Eatss::new(GpuArch::ga100());
    let (program, _) = load("gemm", Dataset::ExtraLarge);
    let sizes = eatss_affine::ProblemSizes::new([("NI", 4000), ("NJ", 4000), ("NK", 4000)]);
    let solution = eatss
        .select_tiles(&program, &sizes, &EatssConfig::default())
        .expect("feasible");
    assert_eq!(solution.tiles.sizes(), &[16, 384, 16]);
}

/// Fig. 7 headline: EATSS improves PPW over default PPCG on the BLAS3
/// class on both GPUs. The Xavier's FP64 pipeline is so narrow that its
/// BLAS3 kernels are compute-saturated in the substrate, so the bar there
/// is parity-or-better (the paper's extra gains come from clock behaviour
/// outside the model); the GA100 must show a clear improvement.
#[test]
fn blas3_ppw_improves_on_both_gpus() {
    for (arch, dataset, bar) in [
        (GpuArch::ga100(), Dataset::ExtraLarge, 1.05),
        (GpuArch::xavier(), Dataset::Standard, 0.98),
    ] {
        for name in ["gemm", "2mm", "covariance"] {
            let (_, ppw_ratio) =
                best_vs_default(&arch, name, dataset, &PAPER_SPLITS, &[0.5, 0.25]);
            assert!(
                ppw_ratio > bar,
                "{name} on {}: PPW ratio {ppw_ratio} below {bar}",
                arch.name
            );
        }
    }
}

/// Fig. 10 headline: high-dimensional kernels gain large factors on the
/// GA100 (paper: 4.8x conv-2d, 6.3x heat-3d, 2.0x mttkrp).
#[test]
fn nonpolybench_speedups_are_large() {
    let arch = GpuArch::ga100();
    for (name, at_least) in [("conv-2d", 1.8), ("heat-3d", 3.0), ("mttkrp", 1.5)] {
        let (speedup, ppw) = best_vs_default(
            &arch,
            name,
            Dataset::ExtraLarge,
            &[0.0, 0.5],
            &PAPER_WARP_FRACTIONS,
        );
        assert!(
            speedup >= at_least,
            "{name}: speedup {speedup:.2} below {at_least}"
        );
        assert!(ppw > 1.0, "{name}: PPW ratio {ppw:.2}");
    }
}

/// Fig. 9: across the tile space, L2 sectors correlate with average
/// power strongly for BLAS3 and weakly for O(1)-reuse kernels.
#[test]
fn l2_sector_power_correlation_ordering() {
    let arch = GpuArch::ga100();
    let opts = CompileOptions::with_split(&arch, 0.5, 8);
    let r_of = |name: &str| -> f64 {
        let (program, sizes) = load(name, Dataset::ExtraLarge);
        // A coarser grid than the figure's (343 vs 729 variants for 3-D
        // kernels) keeps the debug-mode runtime reasonable while leaving
        // the correlation statistics intact.
        let space = TileSpace::new(
            program.max_depth(),
            vec![8, 16, 32, 64, 128, 256, 512],
        );
        let variants =
            eatss_bench_like_explore(&arch, &program, &sizes, &space, &opts);
        let sect: Vec<f64> = variants.iter().map(|v| v.0).collect();
        let pow: Vec<f64> = variants.iter().map(|v| v.1).collect();
        stats::pearson(&sect, &pow)
    };
    let r_gemm = r_of("gemm");
    let r_2mm = r_of("2mm");
    let r_mvt = r_of("mvt");
    assert!(r_gemm > 0.6, "gemm r = {r_gemm}");
    assert!(r_2mm > 0.6, "2mm r = {r_2mm}");
    assert!(r_mvt < 0.6, "mvt r = {r_mvt}");
    assert!(r_mvt < r_gemm && r_mvt < r_2mm);
}

fn eatss_bench_like_explore(
    arch: &GpuArch,
    program: &eatss_affine::Program,
    sizes: &eatss_affine::ProblemSizes,
    space: &TileSpace,
    opts: &CompileOptions,
) -> Vec<(f64, f64)> {
    space
        .iter()
        .filter_map(|tiles| {
            eatss::evaluate_program(arch, program, &tiles, sizes, opts)
                .ok()
                .filter(|r| r.valid)
                .map(|r| (r.l2_sectors_read as f64, r.avg_power_w))
        })
        .collect()
}

/// Fig. 1: gemm average power grows with problem size (constant+static
/// dominate at small sizes, dynamic at large ones).
#[test]
fn gemm_power_grows_with_problem_size() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    let (program, _) = load("gemm", Dataset::ExtraLarge);
    let config = EatssConfig::default();
    let tiles = TileConfig::ppcg_default(3);
    let power_at = |n: i64| {
        let sizes = eatss_affine::ProblemSizes::new([("NI", n), ("NJ", n), ("NK", n)]);
        eatss
            .evaluate(&program, &tiles, &sizes, &config)
            .expect("compiles")
    };
    let small = power_at(1000);
    let large = power_at(6000);
    assert!(
        large.avg_power_w > 1.5 * small.avg_power_w,
        "power must grow: {} -> {}",
        small.avg_power_w,
        large.avg_power_w
    );
    // At small sizes constant + static dominates dynamic; at large sizes
    // dynamic is a major component.
    assert!(small.dynamic_power_w < small.constant_power_w + small.static_power_w);
    assert!(large.dynamic_power_w > 0.5 * (large.constant_power_w + large.static_power_w));
}

/// §V-D: with the full warp alignment (fraction 1.0) some
/// high-dimensional configurations are infeasible, and smaller warp
/// fractions recover them.
#[test]
fn warp_fractions_recover_infeasible_highdim_configs() {
    let eatss = Eatss::new(GpuArch::ga100());
    let (program, sizes) = load("conv-2d", Dataset::ExtraLarge);
    let full = eatss.sweep(&program, &sizes, &[0.5], &[1.0]);
    let frac = eatss
        .sweep(&program, &sizes, &[0.5], &[0.125])
        .expect("eighth-warp must be feasible");
    assert!(!frac.points.is_empty());
    match full {
        Err(_) => {} // fully infeasible: exactly the paper's observation
        Ok(s) => assert!(
            !s.infeasible.is_empty() || !s.points.is_empty(),
            "sweep bookkeeping broken"
        ),
    }
}

/// §V-G: the end-to-end selection stays in the seconds regime the paper
/// reports for Z3 (we only bound it loosely to stay robust on slow CI).
#[test]
fn solver_overhead_stays_small() {
    let eatss = Eatss::new(GpuArch::ga100());
    for name in ["gemm", "mvt", "conv-2d"] {
        let (program, sizes) = load(name, Dataset::ExtraLarge);
        let config = EatssConfig {
            warp_fraction: 0.25,
            ..EatssConfig::default()
        };
        if let Ok(solution) = eatss.select_tiles(&program, &sizes, &config) {
            assert!(
                solution.solve_time.as_secs_f64() < 30.0,
                "{name}: {:?}",
                solution.solve_time
            );
            assert!(solution.solver_calls >= 1);
        }
    }
}

/// Fig. 8: the best shared-memory split is not universally 100% — for at
/// least one kernel a smaller split wins.
#[test]
fn full_shared_split_is_not_always_best() {
    let eatss = Eatss::new(GpuArch::xavier());
    let mut some_small_split_wins = false;
    for name in ["gemm", "mvt", "2mm"] {
        let (program, sizes) = load(name, Dataset::Standard);
        let sweep = eatss
            .sweep(&program, &sizes, &[0.0, 0.5, 1.0], &[0.5])
            .expect("feasible");
        if let Some(best) = sweep.best_by_ppw() {
            if best.config.split_factor < 1.0 {
                some_small_split_wins = true;
            }
        }
    }
    assert!(some_small_split_wins);
}
