//! End-to-end pipeline integration tests: kernel source → analyses →
//! EATSS formulation → solved tiles → PPCG mapping → simulated
//! measurement, across every registered benchmark and both GPUs.

use eatss::{Eatss, EatssConfig};
use eatss_affine::tiling::TileConfig;
use eatss_gpusim::GpuArch;
use eatss_integration::load;
use eatss_kernels::Dataset;

/// The full pipeline runs for every benchmark on the GA100 with the
/// default configuration (falling back to smaller warp fractions where
/// the default alignment is infeasible) and produces a valid
/// measurement.
#[test]
fn every_benchmark_runs_end_to_end_on_ga100() {
    let eatss = Eatss::new(GpuArch::ga100());
    for b in eatss_kernels::all() {
        let (program, sizes) = load(b.name, Dataset::ExtraLarge);
        let sweep = eatss
            .sweep(&program, &sizes, &[0.0, 0.5], &[0.5, 0.25, 0.125])
            .unwrap_or_else(|e| panic!("{}: sweep failed: {e}", b.name));
        let best = sweep
            .best_by_ppw()
            .unwrap_or_else(|| panic!("{}: no valid EATSS point", b.name));
        assert!(best.report.valid, "{}", b.name);
        assert!(best.report.gflops > 0.0, "{}", b.name);
        assert!(
            best.report.avg_power_w > 0.0 && best.report.avg_power_w <= 251.0,
            "{}: power {}",
            b.name,
            best.report.avg_power_w
        );
        assert!(best.report.energy_j.is_finite(), "{}", b.name);
    }
}

/// Same smoke check on the Xavier with STANDARD datasets.
#[test]
fn every_benchmark_runs_end_to_end_on_xavier() {
    let eatss = Eatss::new(GpuArch::xavier());
    for b in eatss_kernels::all() {
        let (program, sizes) = load(b.name, Dataset::Standard);
        let sweep = eatss
            .sweep(&program, &sizes, &[0.0, 0.5], &[0.5, 0.25, 0.125])
            .unwrap_or_else(|e| panic!("{}: sweep failed: {e}", b.name));
        let best = sweep
            .best_by_ppw()
            .unwrap_or_else(|| panic!("{}: no valid EATSS point", b.name));
        assert!(best.report.valid, "{}", b.name);
        assert!(
            best.report.avg_power_w <= 31.0,
            "{}: power above the Xavier TDP: {}",
            b.name,
            best.report.avg_power_w
        );
    }
}

/// EATSS tile selections always satisfy the architectural constraints
/// they were derived from: warp alignment, shared-memory capacity when
/// mapped, and executability.
#[test]
fn selections_respect_their_constraints() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch.clone());
    for name in ["gemm", "2mm", "covariance", "mvt", "jacobi-2d"] {
        let (program, sizes) = load(name, Dataset::ExtraLarge);
        for split in [0.0, 0.5, 0.67] {
            let config = EatssConfig::with_split(split);
            let Ok(solution) = eatss.select_tiles(&program, &sizes, &config) else {
                continue;
            };
            let waf = config.warp_alignment_factor(&arch);
            for (d, &t) in solution.tiles.sizes().iter().enumerate() {
                // Time dims are fixed at 1; others must be warp-aligned.
                assert!(
                    t == 1 || t % waf == 0,
                    "{name}: tile {t} at dim {d} not aligned to {waf}"
                );
                assert!((1..=1024).contains(&t), "{name}: tile {t} out of range");
            }
            let report = eatss
                .evaluate(&program, &solution.tiles, &sizes, &config)
                .expect("selection compiles");
            assert!(report.valid, "{name} split {split}: unexecutable selection");
        }
    }
}

/// The generated CUDA for every benchmark is structurally sound
/// (balanced braces, a kernel per affine kernel, min guards with tiling).
#[test]
fn cuda_codegen_is_structurally_sound_for_all_benchmarks() {
    use eatss_ppcg::{CompileOptions, Ppcg};
    let arch = GpuArch::ga100();
    let ppcg = Ppcg::new(arch);
    for b in eatss_kernels::all() {
        let (program, sizes) = load(b.name, Dataset::Standard);
        let tiles = TileConfig::ppcg_default(program.max_depth());
        let compiled = ppcg
            .compile(&program, &tiles, &sizes, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.name));
        let cuda = &compiled.cuda_source;
        assert_eq!(
            cuda.matches('{').count(),
            cuda.matches('}').count(),
            "{}: unbalanced braces",
            b.name
        );
        assert_eq!(
            cuda.matches("__global__").count(),
            program.kernels.len(),
            "{}",
            b.name
        );
        assert_eq!(compiled.specs.len(), program.kernels.len(), "{}", b.name);
    }
}

/// Bigger problems take longer and consume more energy, given fixed
/// tiles (sanity of the measurement substrate).
#[test]
fn measurements_scale_with_problem_size() {
    let arch = GpuArch::ga100();
    let eatss = Eatss::new(arch);
    let (program, _) = load("gemm", Dataset::ExtraLarge);
    let config = EatssConfig::default();
    let tiles = TileConfig::ppcg_default(3);
    let mut last_time = 0.0;
    let mut last_energy = 0.0;
    for n in [1000, 2000, 4000] {
        let sizes =
            eatss_affine::ProblemSizes::new([("NI", n), ("NJ", n), ("NK", n)]);
        let r = eatss
            .evaluate(&program, &tiles, &sizes, &config)
            .expect("gemm compiles");
        assert!(r.time_s > last_time, "time must grow with N");
        assert!(r.energy_j > last_energy, "energy must grow with N");
        last_time = r.time_s;
        last_energy = r.energy_j;
    }
}

/// The two interpretations of the §IV-F block bound both yield feasible,
/// executable selections for matmul.
#[test]
fn both_cap_modes_produce_valid_gemm_selections() {
    use eatss::ThreadBlockCap;
    let eatss = Eatss::new(GpuArch::ga100());
    let (program, sizes) = load("gemm", Dataset::ExtraLarge);
    for cap in [ThreadBlockCap::Virtual, ThreadBlockCap::Strict] {
        let config = EatssConfig {
            cap,
            ..EatssConfig::default()
        };
        let solution = eatss
            .select_tiles(&program, &sizes, &config)
            .expect("feasible");
        if cap == ThreadBlockCap::Strict {
            let t = solution.tiles.sizes();
            assert!(t[0] * t[1] <= 1024, "strict cap violated: {t:?}");
        }
        let report = eatss
            .evaluate(&program, &solution.tiles, &sizes, &config)
            .expect("compiles");
        assert!(report.valid);
    }
}
