//! Property-based integration tests (proptest) over the whole stack.

use eatss_affine::parser::parse_program;
use eatss_affine::tiling::{TileConfig, TiledNest};
use eatss_affine::ProblemSizes;
use eatss_gpusim::{occupancy, traffic, CacheSim, GpuArch, KernelExecSpec, RefAccess};
use eatss_ppcg::{CompileOptions, GpuMapping};
use eatss_smt::{Solver, SolverConfig};
use proptest::prelude::*;

proptest! {
    /// Tiling never loses or duplicates iteration points, for arbitrary
    /// sizes and tile shapes.
    #[test]
    fn tiling_preserves_iteration_space(
        m in 1i64..12, n in 1i64..12, p in 1i64..12,
        ti in 1i64..15, tj in 1i64..15, tk in 1i64..15,
    ) {
        let program = parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        ).expect("static source");
        let sizes = ProblemSizes::new([("M", m), ("N", n), ("P", p)]);
        let nest = TiledNest::new(&program.kernels[0], &TileConfig::new(vec![ti, tj, tk]))
            .expect("positive tiles");
        let mut pts = nest.enumerate_points(&sizes).expect("bound sizes");
        prop_assert_eq!(pts.len() as i64, m * n * p);
        pts.sort();
        pts.dedup();
        prop_assert_eq!(pts.len() as i64, m * n * p);
    }

    /// The solver's maximize returns a model satisfying every asserted
    /// constraint, and no strictly better feasible value exists among a
    /// random sample of assignments.
    #[test]
    fn solver_models_satisfy_constraints(
        hi_x in 4i64..40, hi_y in 4i64..40,
        cap in 20i64..800, modulus in 2i64..6,
    ) {
        let mut s = Solver::new();
        let x = s.int_var("x", 1, hi_x);
        let y = s.int_var("y", 1, hi_y);
        s.assert((x.clone() * y.clone()).le(cap));
        s.assert(x.modulo(modulus).eq_expr(0));
        let obj = x.clone() * y.clone() + y.clone();
        let out = s.maximize(&obj).expect("no solver error");
        if let Some(model) = out.model {
            let xv = model.value_of_name("x").expect("x bound");
            let yv = model.value_of_name("y").expect("y bound");
            prop_assert!(xv * yv <= cap);
            prop_assert_eq!(xv % modulus, 0);
            let claimed = out.best.expect("sat implies value");
            prop_assert_eq!(claimed, xv * yv + yv);
            // Exhaustive cross-check (domains are small).
            let mut best = i64::MIN;
            for cx in 1..=hi_x {
                for cy in 1..=hi_y {
                    if cx * cy <= cap && cx % modulus == 0 {
                        best = best.max(cx * cy + cy);
                    }
                }
            }
            prop_assert_eq!(claimed, best);
        } else {
            // Unsat: verify no feasible assignment exists.
            for cx in 1..=hi_x {
                for cy in 1..=hi_y {
                    prop_assert!(!(cx * cy <= cap && cx % modulus == 0));
                }
            }
        }
    }

    /// Anytime soundness: under an arbitrary (often binding) node budget,
    /// any model `maximize` returns satisfies every asserted constraint,
    /// budget exhaustion is always reported (`complete == false` with a
    /// stop reason), and a *completed* search is still a true optimum.
    #[test]
    fn anytime_maximize_is_sound_under_tiny_budgets(
        node_limit in 1u64..300,
        hi_x in 8i64..48, hi_y in 8i64..48,
        cap in 30i64..600,
    ) {
        let mut s = Solver::with_config(SolverConfig {
            node_limit,
            ..SolverConfig::default()
        });
        let x = s.int_var("x", 1, hi_x);
        let y = s.int_var("y", 1, hi_y);
        s.assert((x.clone() * y.clone()).le(cap));
        s.assert(x.modulo(2).eq_expr(0));
        let obj = x.clone() * y.clone() + y.clone();
        let out = s.maximize(&obj).expect("no solver error");
        // A budget stop and `complete` are two views of the same fact.
        prop_assert_eq!(out.complete, out.stop.is_none());
        if !out.complete {
            prop_assert!(!out.optimal, "interrupted searches never claim optimality");
        }
        // Feasibility of whatever came back, complete or not.
        if let Some(model) = &out.model {
            let xv = model.value_of_name("x").expect("x bound");
            let yv = model.value_of_name("y").expect("y bound");
            prop_assert!((1..=hi_x).contains(&xv) && (1..=hi_y).contains(&yv));
            prop_assert!(xv * yv <= cap);
            prop_assert_eq!(xv % 2, 0);
            prop_assert_eq!(out.best.expect("model implies value"), xv * yv + yv);
        }
        // x=2, y=1 is always feasible here, so a one-node budget cannot
        // finish assigning two free variables: the budget must bind.
        if node_limit == 1 {
            prop_assert!(!out.complete);
            prop_assert!(out.stop.is_some());
        }
        // A completed search is exact: cross-check exhaustively.
        if out.complete {
            let mut best = None;
            for cx in 1..=hi_x {
                for cy in 1..=hi_y {
                    if cx * cy <= cap && cx % 2 == 0 {
                        best = best.max(Some(cx * cy + cy));
                    }
                }
            }
            prop_assert_eq!(out.best, best);
        }
    }

    /// Cache simulator invariants: counters are consistent and misses are
    /// bounded by compulsory-below, accesses-above.
    #[test]
    fn cache_sim_invariants(addrs in prop::collection::vec(0u64..4096, 1..300)) {
        let mut sim = CacheSim::new(1024, 64, 4);
        for &a in &addrs {
            sim.access(a);
        }
        let st = sim.stats();
        prop_assert_eq!(st.accesses, addrs.len() as u64);
        prop_assert_eq!(st.hits + st.misses, st.accesses);
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert!(st.misses >= lines.len() as u64, "at least compulsory");
        prop_assert!(st.misses <= addrs.len() as u64);
        prop_assert!(sim.resident_lines() <= 16);
    }

    /// LRU stack property: a larger fully-associative LRU cache never
    /// misses more than a smaller one on the same trace.
    #[test]
    fn lru_inclusion_property(addrs in prop::collection::vec(0u64..8192, 1..300)) {
        let mut small = CacheSim::fully_associative(512, 64);
        let mut large = CacheSim::fully_associative(2048, 64);
        let mut small_misses = 0;
        let mut large_misses = 0;
        for &a in &addrs {
            if small.access(a) == eatss_gpusim::AccessOutcome::Miss {
                small_misses += 1;
            }
            if large.access(a) == eatss_gpusim::AccessOutcome::Miss {
                large_misses += 1;
            }
        }
        prop_assert!(large_misses <= small_misses);
    }

    /// Occupancy is always within hardware limits, and the launch either
    /// fits or is reported unexecutable — never silently oversubscribed.
    #[test]
    fn occupancy_within_limits(
        tpb in 1i64..2048,
        grid in 1i64..100_000,
        shared in 0u32..200_000,
        refs in 1u32..10,
    ) {
        let arch = GpuArch::ga100();
        let spec = KernelExecSpec {
            name: "prop".into(),
            grid_blocks: grid,
            grid_x_blocks: grid,
            threads_per_block: tpb,
            points_per_thread: 1,
            serial_steps_per_block: 1,
            flops_total: 1e6,
            elem_bytes: 8,
            shared_bytes_per_block: shared,
            l1_avail_bytes: 96 * 1024,
            num_refs: refs,
            refs: vec![RefAccess::streaming("a", 1_000_000, 1024, true)],
        };
        let occ = occupancy::occupancy(&arch, &spec);
        prop_assert!(occ.blocks_per_sm <= arch.max_blocks_per_sm);
        prop_assert!(occ.occupancy >= 0.0 && occ.occupancy <= 1.0);
        if occ.blocks_per_sm > 0 {
            prop_assert!(
                occ.blocks_per_sm as i64 * tpb <= arch.max_threads_per_sm as i64
            );
            prop_assert!(occ.tail_efficiency > 0.0 && occ.tail_efficiency <= 1.0);
            // Traffic and sector counts are finite and non-negative.
            let t = traffic::model(&arch, &spec, &occ);
            prop_assert!(t.l2_sectors_read.is_finite() && t.l2_sectors_read >= 0.0);
            prop_assert!(t.dram_bytes.is_finite() && t.dram_bytes >= 0.0);
        }
    }

    /// GPU mapping invariants for matmul under arbitrary tile shapes:
    /// threads within caps, grid covers the iteration space, per-block
    /// access counts at least cover the block's own points.
    #[test]
    fn mapping_invariants_matmul(
        ti in 1i64..600, tj in 1i64..600, tk in 1i64..600,
        n in 32i64..512,
    ) {
        let program = parse_program(
            "kernel mm(M, N, P) {
               for (i: M) for (j: N) for (k: P)
                 C[i][j] += A[i][k] * B[k][j];
             }",
        ).expect("static source");
        let arch = GpuArch::ga100();
        let sizes = ProblemSizes::new([("M", n), ("N", n), ("P", n)]);
        let mapping = GpuMapping::compute(
            &program.kernels[0],
            &TileConfig::new(vec![ti, tj, tk]),
            &arch,
            &sizes,
            &CompileOptions::default(),
        ).expect("mappable");
        let spec = mapping.to_exec_spec();
        prop_assert!(spec.threads_per_block >= 1);
        prop_assert!(spec.threads_per_block <= arch.max_threads_per_block as i64);
        // Grid × tile covers the parallel dims.
        for (pos, &d) in mapping.mapped_dims.iter().enumerate() {
            let tile = mapping.tiles.sizes()[d];
            prop_assert!(mapping.grid_extents[pos] * tile >= n);
            prop_assert!((mapping.grid_extents[pos] - 1) * tile < n);
        }
        // Threads × points ≥ tile points.
        let tile_points: i64 = mapping
            .mapped_dims
            .iter()
            .map(|&d| mapping.tiles.sizes()[d].min(n))
            .product();
        prop_assert!(spec.threads_per_block * spec.points_per_thread >= tile_points);
    }
}

// ---------------------------------------------------------------------------
// Randomized whole-pipeline fuzzing: generate structurally valid affine
// programs, then require that every stage either succeeds with sane
// output or fails with a clean error — never panics, never produces
// non-finite measurements.

/// Strategy: a random kernel of depth 1..=4 with 1..=3 read refs whose
/// subscripts use random iterator subsets with small offsets.
fn arb_kernel_source() -> impl Strategy<Value = String> {
    (
        2usize..=4,                                  // depth
        1usize..=3,                                  // number of reads
        prop::collection::vec(0usize..4, 12),        // dim picks
        prop::collection::vec(-1i64..=1, 12),        // offsets
        prop::bool::ANY,                             // accumulation
    )
        .prop_map(|(depth, nreads, dims, offsets, accum)| {
            let iters = ["i", "j", "k", "l"];
            let params = ["N0", "N1", "N2", "N3"];
            let mut src = String::from("kernel fuzz(");
            src.push_str(&params[..depth].join(", "));
            src.push_str(") {\n");
            for d in 0..depth {
                src.push_str(&format!("  for ({}: {})\n", iters[d], params[d]));
            }
            // Write ref: uses the first min(2, depth) iterators directly
            // (guaranteed mappable: zero-distance self-deps only).
            let wdims = depth.min(2);
            let mut write = String::from("W");
            for item in iters.iter().take(wdims) {
                write.push_str(&format!("[{item}]"));
            }
            let mut rhs: Vec<String> = Vec::new();
            for r in 0..nreads {
                let ndims = 1 + (dims[r] % depth.clamp(1, 2));
                let mut rf = format!("R{r}");
                for (pos, item) in iters.iter().enumerate().take(ndims.min(depth)) {
                    let off = offsets[(r * 4 + pos) % offsets.len()];
                    let off_txt = match off.cmp(&0) {
                        std::cmp::Ordering::Greater => format!("+{off}"),
                        std::cmp::Ordering::Less => off.to_string(),
                        std::cmp::Ordering::Equal => String::new(),
                    };
                    rf.push_str(&format!("[{}{off_txt}]", item));
                }
                rhs.push(rf);
            }
            let op = if accum { "+=" } else { "=" };
            src.push_str(&format!("    {write} {op} {};\n}}\n", rhs.join(" * ")));
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The whole front end round-trips and never panics on generated
    /// programs.
    #[test]
    fn fuzz_frontend_roundtrip(src in arb_kernel_source()) {
        let program = parse_program(&src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{src}"));
        let printed = eatss_affine::pretty::pretty_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed source must parse: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &program);
        // Analyses never panic and stay structurally consistent.
        for kernel in &program.kernels {
            let analysis = eatss_affine::analysis::AccessAnalysis::analyze(kernel);
            prop_assert_eq!(analysis.parallel.len(), kernel.depth());
            prop_assert!(analysis.distinct_line_refs() >= 1);
            let h = analysis.h_weights(16);
            prop_assert_eq!(h.len(), kernel.depth());
        }
    }

    /// The full pipeline on generated programs: either a clean error or a
    /// finite, positive measurement.
    #[test]
    fn fuzz_pipeline_is_total(src in arb_kernel_source(), n in 32i64..200) {
        let program = parse_program(&src).expect("generated source parses");
        let sizes = ProblemSizes::new(
            ["N0", "N1", "N2", "N3"].into_iter().map(|p| (p, n)),
        );
        let arch = GpuArch::ga100();
        let eatss = eatss::Eatss::new(arch);
        let config = eatss::EatssConfig {
            warp_fraction: 0.25,
            ..eatss::EatssConfig::default()
        };
        match eatss.select_tiles(&program, &sizes, &config) {
            Ok(solution) => {
                for &t in solution.tiles.sizes() {
                    prop_assert!((1..=1024).contains(&t));
                }
                let report = eatss
                    .evaluate(&program, &solution.tiles, &sizes, &config)
                    .expect("selected tiles compile");
                if report.valid {
                    prop_assert!(report.time_s.is_finite() && report.time_s > 0.0);
                    prop_assert!(report.avg_power_w.is_finite() && report.avg_power_w > 0.0);
                    prop_assert!(report.energy_j.is_finite() && report.energy_j > 0.0);
                }
            }
            Err(eatss::EatssError::Unsatisfiable { .. }) => {} // clean outcome
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }
}
