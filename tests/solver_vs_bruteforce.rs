//! Cross-validation of the EATSS model generator against brute force:
//! on problem sizes small enough to enumerate, the solver's selection
//! must attain the true optimum of the §IV objective subject to the
//! §IV constraints.

use eatss::{EatssConfig, ModelGenerator, Precision, ThreadBlockCap};
use eatss_affine::analysis::AccessAnalysis;
use eatss_affine::parser::parse_program;
use eatss_affine::ProblemSizes;
use eatss_gpusim::GpuArch;

/// Brute-force optimum of the matmul formulation over aligned tiles.
fn matmul_bruteforce(
    arch: &GpuArch,
    config: &EatssConfig,
    upper: &[i64; 3],
) -> Option<(i64, [i64; 3])> {
    let waf = config.warp_alignment_factor(arch);
    let elem = config.precision.elem_bytes() as i64;
    let fp = config.precision.fp_factor();
    let l1sh = arch.l1_shared_bytes as i64 / elem;
    let split = config.split_factor;
    let cap_sh = ((l1sh as f64 * split) as i64)
        .min(arch.max_shared_per_block as i64 / elem);
    let cap_l1 = (l1sh as f64 * (1.0 - split)) as i64;
    let l2 = arch.l2_bytes as i64 / elem;
    let mut best: Option<(i64, [i64; 3])> = None;
    let candidates = |hi: i64| (1..=hi).filter(move |t| t % waf == 0);
    for ti in candidates(upper[0]) {
        for tj in candidates(upper[1]) {
            for tk in candidates(upper[2]) {
                let bsize = ti * tj;
                if config.cap == ThreadBlockCap::Strict && bsize > 1024 {
                    continue;
                }
                if bsize * 3 * fp > arch.regs_per_sm as i64 {
                    continue;
                }
                let (m_l1, m_sh) = if cap_sh <= 0 {
                    (ti * tj + tk * tj + ti * tk, 0)
                } else {
                    (ti * tj + tk * tj, ti * tk)
                };
                if cap_sh > 0 && m_sh > cap_sh {
                    continue;
                }
                if m_l1 > cap_l1 {
                    continue;
                }
                if m_l1 + m_sh > l2 {
                    continue;
                }
                let obj = bsize + 2 * waf * tj;
                if best.map(|(b, _)| obj > b).unwrap_or(true) {
                    best = Some((obj, [ti, tj, tk]));
                }
            }
        }
    }
    best
}

fn matmul_program() -> eatss_affine::Program {
    parse_program(
        "kernel matmul(M, N, P) {
           for (i: M) for (j: N) for (k: P)
             Out[i][j] += In[i][k] * Ker[k][j];
         }",
    )
    .expect("static source")
}

#[test]
fn solver_matches_bruteforce_across_configs() {
    let arch = GpuArch::ga100();
    let program = matmul_program();
    // Sanity: the brute force replicates the real H-weights.
    let analysis = AccessAnalysis::analyze(&program.kernels[0]);
    assert_eq!(analysis.h_weights(16), vec![0, 32, 0]);

    for split in [0.0, 0.5, 0.67, 1.0] {
        for frac in [0.25, 0.5] {
            for cap in [ThreadBlockCap::Virtual, ThreadBlockCap::Strict] {
                for precision in [Precision::F32, Precision::F64] {
                    let config = EatssConfig {
                        split_factor: split,
                        warp_fraction: frac,
                        cap,
                        precision,
                    };
                    if split == 1.0 {
                        // §IV-H replaces the L1 bound with the per-SM L2
                        // share; the brute force above does not model
                        // that branch — skip it here (covered by unit
                        // tests in eatss::model).
                        continue;
                    }
                    let n = 480i64;
                    let sizes =
                        ProblemSizes::new([("M", n), ("N", n), ("P", n)]);
                    let solved = ModelGenerator::new(&arch, config.clone())
                        .build(&program, Some(&sizes))
                        .expect("build succeeds")
                        .solve();
                    let brute = matmul_bruteforce(&arch, &config, &[n, n, n]);
                    match (solved, brute) {
                        (Ok(solution), Some((best_obj, _))) => {
                            assert_eq!(
                                solution.objective, best_obj,
                                "split {split} frac {frac} cap {cap:?} \
                                 {precision:?}: solver found {} (tiles {}), \
                                 brute force {best_obj}",
                                solution.objective, solution.tiles
                            );
                        }
                        (Err(_), None) => {} // both infeasible: consistent
                        (Ok(s), None) => panic!(
                            "solver found {} but brute force says infeasible",
                            s.tiles
                        ),
                        (Err(e), Some((obj, t))) => panic!(
                            "solver infeasible ({e}) but brute force found \
                             {obj} at {t:?}"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn solver_matches_bruteforce_with_tiny_extents() {
    // Clipped upper bounds (problem smaller than T_P_B) must agree too.
    let arch = GpuArch::xavier();
    let program = matmul_program();
    for n in [16i64, 48, 96] {
        let config = EatssConfig {
            warp_fraction: 0.25,
            ..EatssConfig::default()
        };
        let sizes = ProblemSizes::new([("M", n), ("N", n), ("P", n)]);
        let solved = ModelGenerator::new(&arch, config.clone())
            .build(&program, Some(&sizes))
            .expect("build succeeds")
            .solve()
            .expect("feasible at WAF=8");
        let brute =
            matmul_bruteforce(&arch, &config, &[n, n, n]).expect("brute feasible");
        assert_eq!(solved.objective, brute.0, "n = {n}");
    }
}
