//! Offline stand-in for the subset of `criterion 0.5` this workspace
//! uses. See `shims/README.md`.
//!
//! It times each benchmark closure over the configured number of
//! samples and prints a one-line mean — no warm-up modelling, outlier
//! analysis or report generation. Statistical sophistication is traded
//! for having *runnable* benches in an offline environment.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (printed alongside the timing line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-iteration timer handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: u32,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed call to pay lazy-initialisation costs.
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total = started.elapsed();
        self.iters = self.samples as u64;
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, b: &Bencher) {
    let mean = if b.iters > 0 {
        b.total / b.iters as u32
    } else {
        Duration::ZERO
    };
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!(" ({:.1} Kelem/s)", n as f64 / mean.as_secs_f64() / 1e3)
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!(" ({:.1} MiB/s)", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("bench {label}: mean {mean:?} over {} samples{rate}", b.iters);
}

/// A named group of benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            ..Bencher::default()
        };
        f(&mut b);
        report(&self.name, &id.to_string(), self.throughput, &b);
        self
    }

    /// Runs a benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            ..Bencher::default()
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), self.throughput, &b);
        self
    }

    /// Ends the group (a no-op beyond matching the real API).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: u32,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark closure.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(String::new()).bench_function(name, f);
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure_and_counts() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // 1 warm-up + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut seen = 0i64;
        c.benchmark_group("g")
            .sample_size(1)
            .throughput(Throughput::Elements(10))
            .bench_with_input(BenchmarkId::from_parameter(7), &41i64, |b, &x| {
                b.iter(|| seen = x + 1)
            });
        assert_eq!(seen, 42);
    }
}
