//! Case execution: configuration, per-case RNG, error type, runner.

use std::fmt;

/// Runner configuration (the subset of `ProptestConfig` we need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; these integration properties
        // exercise whole solver/simulator pipelines per case, so a
        // smaller deterministic default keeps `cargo test` snappy while
        // still covering a broad input sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (not panicked) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(message: impl fmt::Display) -> Self {
        TestCaseError(message.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case `index` of the test named `name`. The seed is a
    /// hash of both, so every case replays bit-for-bit across runs.
    pub fn for_case(name: &str, index: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            seed ^= *b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed ^= index as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Drives one property over its configured number of cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the test named `name`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Runs `case` once per configured case. The closure returns the
    /// rendered inputs (for diagnostics) and the case outcome; the first
    /// failure panics with the inputs and the deterministic case index.
    pub fn run(
        &mut self,
        mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    ) {
        for index in 0..self.config.cases {
            let mut rng = TestRng::for_case(self.name, index);
            let (inputs, outcome) = case(&mut rng);
            if let Err(e) = outcome {
                panic!(
                    "proptest `{}` failed at case {}/{}: {}\ninputs:{}",
                    self.name, index, self.config.cases, e, inputs
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut d = TestRng::for_case("u", 0);
        let mut e = TestRng::for_case("t", 0);
        assert_ne!(d.next_u64(), e.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure_with_case_index() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(3), "boom");
        r.run(|_rng| {
            (
                "\n  x = 1".to_owned(),
                Err(TestCaseError::fail("nope")),
            )
        });
    }

    #[test]
    fn runner_counts_cases() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(5), "count");
        let mut n = 0;
        r.run(|_| {
            n += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(n, 5);
    }
}
