//! Offline stand-in for the subset of `proptest 1` this workspace uses.
//! See `shims/README.md`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics immediately, printing the
//!   generated inputs and the deterministic case seed.
//! * **No regression persistence.** `*.proptest-regressions` files are
//!   ignored; determinism comes from seeding each case with a hash of
//!   the test name and the case index, so failures replay exactly.
//! * **Simple uniform generation** (modulo-biased for huge ranges —
//!   irrelevant at the range sizes used here).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for collection strategies.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a vector strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing both booleans.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(&format!(
                        "\n  {} = {:?}", stringify!($arg), &$arg,
                    ));
                )*
                let __result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| { $body ::core::result::Result::Ok(()) })();
                (__inputs, __result)
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3i64..17, y in 2usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..=9).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_map_compose(
            s in (1i32..4, prop::bool::ANY).prop_map(|(n, b)| {
                if b { format!("y{n}") } else { format!("n{n}") }
            })
        ) {
            prop_assert!(s.starts_with('y') || s.starts_with('n'));
            let n: i32 = s[1..].parse().expect("digit suffix");
            prop_assert!((1..4).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_attribute_parses(x in 0i64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..10);
        let mut a = crate::test_runner::TestRng::for_case("d", 3);
        let mut b = crate::test_runner::TestRng::for_case("d", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
        let mut c = crate::test_runner::TestRng::for_case("d", 4);
        assert_ne!(s.generate(&mut c), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_case_panics_with_inputs() {
        // No `#[test]` meta here: the fn is nested inside this test and
        // invoked directly.
        proptest! {
            fn inner(x in 0i64..10) {
                prop_assert!(x > 100, "assertion failed: impossible bound");
            }
        }
        inner();
    }
}
