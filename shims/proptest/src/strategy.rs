//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy
/// is just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span =
                    (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::for_case("ends", 0);
        let s = -1i64..=1;
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((-1..=1).contains(&v));
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all three values appear");
    }

    #[test]
    fn just_returns_the_value() {
        let mut rng = TestRng::for_case("just", 0);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
