//! Offline stand-in for the subset of `rand 0.8` this workspace uses.
//!
//! See `shims/README.md` for why this exists. The generator is
//! splitmix64 — deterministic, seedable, and statistically adequate for
//! the autotuner's sampling needs (it is not cryptographic and does not
//! claim stream compatibility with the real `StdRng`).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core entropy source (the subset of `rand_core::RngCore` we need).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample. Panics on an empty range, like the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u32, u64, i32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64-based stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// The subset of `rand::seq::SliceRandom` we need.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20i64);
            assert!((10..20).contains(&v));
        }
        let neg = rng.gen_range(-5..5i32);
        assert!((-5..5).contains(&neg));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
