//! Energy tuning of gemm: sweep the paper's shared-memory split levels
//! and warp fractions, list every candidate, and pick the
//! performance-per-watt winner — the §V-B workflow.
//!
//! ```text
//! cargo run -p eatss-examples --bin gemm_energy_tuning [xavier]
//! ```

use eatss::sweep::PAPER_SPLITS;
use eatss::Eatss;
use eatss_gpusim::GpuArch;
use eatss_kernels::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xavier = std::env::args().any(|a| a == "xavier");
    let (arch, dataset) = if xavier {
        (GpuArch::xavier(), Dataset::Standard)
    } else {
        (GpuArch::ga100(), Dataset::ExtraLarge)
    };
    println!("tuning gemm on {arch}\n");

    let bench = eatss_kernels::by_name("gemm").expect("gemm is registered");
    let program = bench.program()?;
    let sizes = bench.sizes(dataset);

    let eatss = Eatss::new(arch);
    let sweep = eatss.sweep(&program, &sizes, &PAPER_SPLITS, &[0.5, 0.25])?;

    println!(
        "{:<8} {:<6} {:<8} {:<18} {:>9} {:>8} {:>9} {:>7}",
        "split", "wfrac", "cap", "tiles", "GFLOP/s", "W", "J", "PPW"
    );
    for p in &sweep.points {
        println!(
            "{:<8.2} {:<6.3} {:<8} {:<18} {:>9.0} {:>8.1} {:>9.2} {:>7.2}",
            p.config.split_factor,
            p.config.warp_fraction,
            format!("{:?}", p.config.cap),
            p.solution.tiles.to_string(),
            p.report.gflops,
            p.report.avg_power_w,
            p.report.energy_j,
            p.report.ppw,
        );
    }
    for (cfg, reason) in &sweep.infeasible {
        println!(
            "{:<8.2} {:<6.3} infeasible: {reason}",
            cfg.split_factor, cfg.warp_fraction
        );
    }

    let by_ppw = sweep.best_by_ppw().expect("at least one valid point");
    let by_perf = sweep.best_by_perf().expect("at least one valid point");
    let by_energy = sweep.best_by_energy().expect("at least one valid point");
    println!("\nbest by PPW    : {} ({:.2} GFLOP/s/W)", by_ppw.solution.tiles, by_ppw.report.ppw);
    println!("best by perf   : {} ({:.0} GFLOP/s)", by_perf.solution.tiles, by_perf.report.gflops);
    println!("best by energy : {} ({:.2} J)", by_energy.solution.tiles, by_energy.report.energy_j);
    Ok(())
}
