//! Support crate for the runnable examples (`cargo run -p eatss-examples
//! --bin <name>`). The examples themselves live next to this file:
//!
//! * `quickstart` — select tiles for matmul and inspect the solution;
//! * `gemm_energy_tuning` — sweep shared-memory splits on gemm and
//!   compare performance/energy against default PPCG;
//! * `stencil_sweep` — tile-space exploration of jacobi-2d on both GPUs;
//! * `custom_kernel` — bring your own affine kernel source end-to-end.

#![forbid(unsafe_code)]
