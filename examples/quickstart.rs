//! Quickstart: select energy-aware tile sizes for matmul on a GA100.
//!
//! ```text
//! cargo run -p eatss-examples --bin quickstart
//! ```

use eatss::{Eatss, EatssConfig};
use eatss_affine::parser::parse_program;
use eatss_affine::ProblemSizes;
use eatss_gpusim::GpuArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the affine kernel (the paper's running example).
    let program = parse_program(
        "kernel matmul(M, N, P) {
           for (i: M) for (j: N) for (k: P)
             Out[i][j] += In[i][k] * Ker[k][j];
         }",
    )?;

    // 2. Pick the target GPU and problem sizes.
    let eatss = Eatss::new(GpuArch::ga100());
    let sizes = ProblemSizes::new([("M", 4000), ("N", 4000), ("P", 4000)]);

    // 3. Solve the EATSS formulation (§IV): FP64, 50% shared-memory
    //    split, half-warp alignment — the paper's default operating
    //    point.
    let config = EatssConfig::default();
    let solution = eatss.select_tiles(&program, &sizes, &config)?;
    println!("selected tiles : {}", solution.tiles);
    println!("objective      : {}", solution.objective);
    println!(
        "solver         : {} calls, {:.3} s{}",
        solution.solver_calls,
        solution.solve_time.as_secs_f64(),
        if solution.optimal { " (optimal)" } else { "" }
    );

    // 4. Measure the selection on the GPU model and compare with the
    //    PPCG default tiling (32^d).
    let ours = eatss.evaluate(&program, &solution.tiles, &sizes, &config)?;
    let default = eatss.evaluate(
        &program,
        &eatss_affine::tiling::TileConfig::ppcg_default(3),
        &sizes,
        &config,
    )?;
    println!("\n              {:>12} {:>12}", "default 32^3", "EATSS");
    println!(
        "GFLOP/s       {:>12.0} {:>12.0}",
        default.gflops, ours.gflops
    );
    println!(
        "avg power (W) {:>12.1} {:>12.1}",
        default.avg_power_w, ours.avg_power_w
    );
    println!(
        "energy (J)    {:>12.2} {:>12.2}",
        default.energy_j, ours.energy_j
    );
    println!("PPW           {:>12.2} {:>12.2}", default.ppw, ours.ppw);
    println!(
        "\nEATSS improves performance-per-watt by {:.2}x",
        ours.ppw / default.ppw
    );
    Ok(())
}
