//! Bring your own kernel: write an affine kernel in the DSL (or pass a
//! path to a file containing one), inspect the analyses, the SMT-LIB
//! formulation, the selected tiles, and the generated CUDA.
//!
//! ```text
//! cargo run -p eatss-examples --bin custom_kernel [path/to/kernel.eatss]
//! ```

use eatss::{EatssConfig, ModelGenerator};
use eatss_affine::analysis::AccessAnalysis;
use eatss_affine::parser::parse_program;
use eatss_affine::ProblemSizes;
use eatss_gpusim::GpuArch;
use eatss_ppcg::{CompileOptions, Ppcg};

const DEFAULT_KERNEL: &str = "
// A batched matrix-vector product: y[b][i] += A[b][i][j] * x[b][j]
kernel batched_mv(B, N) {
  for (b: B) for (i: N) for (j: N)
    y[b][i] += A[b][i][j] * x[b][j];
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT_KERNEL.to_owned(),
    };
    let program = parse_program(&source)?;
    let kernel = &program.kernels[0];
    println!("kernel `{}`, depth {}", kernel.name, kernel.depth());

    // --- analyses ---------------------------------------------------
    let analysis = AccessAnalysis::analyze(kernel);
    let names = kernel.dim_names();
    println!(
        "parallel dims : {:?}",
        names
            .iter()
            .zip(&analysis.parallel)
            .filter(|(_, &p)| p)
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "CMA loop      : {}",
        analysis
            .cma_dim
            .map(|d| names[d].clone())
            .unwrap_or_else(|| "-".into())
    );
    for g in &analysis.groups {
        println!(
            "  {:<16} -> {} ({})",
            g.representative.display_with(&names),
            g.memory,
            if g.cma_capable { "CMA" } else { "no CMA" }
        );
    }

    // --- the formulation (SMT-LIB export) -----------------------------
    let arch = GpuArch::ga100();
    let config = EatssConfig::default();
    let generator = ModelGenerator::new(&arch, config.clone());
    let sizes = ProblemSizes::uniform(
        ["B", "N", "M", "P", "K"],
        2048,
    );
    let model = generator.build(&program, Some(&sizes))?;
    println!("\nSMT-LIB formulation:\n{}", model.to_smtlib());

    // --- solve + generate CUDA ---------------------------------------
    let solution = model.solve()?;
    println!("selected tiles: {} (objective {})", solution.tiles, solution.objective);
    let compiled = Ppcg::new(arch).compile(
        &program,
        &solution.tiles,
        &sizes,
        &CompileOptions::default(),
    )?;
    println!("\ngenerated CUDA:\n{}", compiled.cuda_source);
    Ok(())
}
