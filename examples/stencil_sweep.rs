//! Tile-space exploration of an iterative stencil (jacobi-2d) on both
//! GPUs: enumerate a PPCG tile grid, measure every variant on the GPU
//! model, and place the EATSS selection inside the distribution.
//!
//! ```text
//! cargo run -p eatss-examples --bin stencil_sweep
//! ```

use eatss::{evaluate_program, Eatss, EatssConfig};
use eatss_gpusim::{Gpu, GpuArch};
use eatss_kernels::Dataset;
use eatss_ppcg::{CompileOptions, Ppcg, TileSpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = eatss_kernels::by_name("jacobi-2d").expect("jacobi-2d is registered");
    let program = bench.program()?;

    for (arch, dataset) in [
        (GpuArch::ga100(), Dataset::ExtraLarge),
        (GpuArch::xavier(), Dataset::Standard),
    ] {
        let sizes = bench.sizes(dataset);
        println!("=== {arch} ===");
        let config = EatssConfig::with_split(0.0); // stencils have no SH set
        let opts = config.compile_options(&arch);

        // Explore a 3-dim space (time dim tiles are ignored by the
        // compiler, so enumerate the two space dims only).
        let space = TileSpace::new(2, vec![8, 16, 32, 64, 128, 256]);
        let mut best = f64::NEG_INFINITY;
        let mut worst = f64::INFINITY;
        let mut count = 0;
        for cfg in space.iter() {
            let mut tiles = vec![1]; // time dim
            tiles.extend_from_slice(cfg.sizes());
            let report = evaluate_program(
                &arch,
                &program,
                &eatss_affine::tiling::TileConfig::new(tiles),
                &sizes,
                &opts,
            )?;
            if report.valid {
                best = best.max(report.gflops);
                worst = worst.min(report.gflops);
                count += 1;
            }
        }
        println!("space: {count} valid variants, {worst:.0}..{best:.0} GFLOP/s");

        // The EATSS pick.
        let eatss = Eatss::new(arch.clone());
        let solution = eatss.select_tiles(&program, &sizes, &config)?;
        let report = eatss.evaluate(&program, &solution.tiles, &sizes, &config)?;
        println!(
            "EATSS pick {}: {:.0} GFLOP/s, {:.1} W, {:.2} J ({:.0}% of space best)\n",
            solution.tiles,
            report.gflops,
            report.avg_power_w,
            report.energy_j,
            100.0 * report.gflops / best
        );

        // Also show the generated CUDA for the selection.
        if arch.name == "GA100" {
            let compiled = Ppcg::new(arch.clone()).compile(
                &program,
                &solution.tiles,
                &sizes,
                &CompileOptions { ..opts.clone() },
            )?;
            let first_kernel: String = compiled
                .cuda_source
                .lines()
                .take(18)
                .collect::<Vec<_>>()
                .join("\n");
            println!("generated CUDA (first kernel, excerpt):\n{first_kernel}\n");
            // And the simulator view of one launch:
            let gpu = Gpu::new(arch);
            let r = gpu.simulate(&compiled.mappings[0].to_exec_spec());
            println!("single launch: {r}\n");
        }
    }
    Ok(())
}
