#!/usr/bin/env python3
"""CI smoke for the tuning service's crash-safety story.

Drives the real `eatss-serve` binary end to end: a chaos mix of valid,
infeasible, and malformed requests; SIGKILL with a request mid-flight;
restart on the same cache directory; then asserts the warm-start hit
rate is positive and the recovery counters are clean. Along the way it
scrapes the `metrics` op (mid-load and after restart, asserting the
stage histograms and self-monitoring gauges are live) and validates the
`trace` op's Chrome export with `trace_check` when its path is given.

Usage: serve_smoke.py /path/to/eatss-serve [/path/to/trace_check]
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

SELECTS = [
    {"kernel": "gemm", "n": 1024},
    {"kernel": "atax", "n": 2000},
    {"kernel": "bicg", "n": 512},
    {"kernel": "gemm", "n": 8},  # provably unsatisfiable: a cached verdict
]


def spawn(binary, cache_dir):
    proc = subprocess.Popen(
        [binary, "--addr", "127.0.0.1:0", "--cache-dir", cache_dir, "--workers", "2"],
        stdout=subprocess.PIPE,
        text=True,
    )
    ready = json.loads(proc.stdout.readline())
    assert ready.get("ready") is True, ready
    return proc, ready


def connect(addr):
    host, port = addr.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=60)
    return sock, sock.makefile("r")


def request(sock, lines, payload):
    sock.sendall((json.dumps(payload) + "\n").encode())
    return json.loads(lines.readline())


def scrape_metrics(sock, lines, phase):
    """The `metrics` op must expose live stage histograms and gauges."""
    reply = request(sock, lines, {"op": "metrics"})
    assert reply["status"] == "ok", reply
    metrics = reply["metrics"]
    hist = metrics["histograms"]
    for name in ("serve.request_us", "serve.solve_us"):
        assert name in hist, (phase, sorted(hist))
        h = hist[name]
        assert h["count"] >= 1, (phase, name, h)
        assert h["p50"] <= h["p99"] <= h["max"], (phase, name, h)
    gauges = metrics["gauges"]
    for name in ("journal.garbage_ratio", "serve.queue_depth", "serve.in_flight"):
        assert name in gauges, (phase, sorted(gauges))
    assert "serve_request_us_bucket" in reply["prometheus"], reply["prometheus"][:200]
    print(
        f"{phase}: metrics scrape ok — serve.solve_us count "
        f"{hist['serve.solve_us']['count']}, garbage ratio "
        f"{gauges['journal.garbage_ratio']}"
    )


def check_trace_op(sock, lines, trace_check, cache_dir):
    """The `trace` op's export must be a valid Chrome trace."""
    reply = request(sock, lines, {"op": "trace", "which": "slowest", "limit": 1})
    assert reply["status"] == "ok", reply
    assert len(reply["requests"]) == 1, reply["requests"]
    assert reply["trace"]["traceEvents"], "empty trace export"
    if not trace_check:
        return
    path = os.path.join(cache_dir, "slowest.trace.json")
    with open(path, "w") as f:
        json.dump(reply["trace"], f)
    subprocess.run(
        [
            trace_check,
            "--format", "chrome",
            "--expect-histogram", "serve.request_us",
            path,
        ],
        check=True,
    )
    print(f"trace op: slowest-request export passed {os.path.basename(trace_check)}")


def main():
    binary = sys.argv[1]
    trace_check = sys.argv[2] if len(sys.argv) > 2 else None
    cache_dir = tempfile.mkdtemp(prefix="eatss-serve-smoke-")

    # Phase 1: chaos mix, then SIGKILL with a request in flight.
    proc, ready = spawn(binary, cache_dir)
    assert ready["replayed"] == 0, ready
    sock, lines = connect(ready["addr"])
    committed = []
    for args in SELECTS:
        reply = request(sock, lines, args)
        assert reply["status"] in ("ok", "infeasible"), reply
        assert reply["cache"] == "miss", reply
        committed.append((args, reply["status"], reply.get("tiles")))
    # Malformed garbage must get typed errors, not kill the connection.
    sock.sendall(b"this is not json\n")
    assert json.loads(lines.readline())["error"]["kind"] == "bad_json"
    assert request(sock, lines, {"kernel": "nope"})["error"]["kind"] == "unknown_kernel"
    assert request(sock, lines, {"op": "ping"})["status"] == "ok"
    # Mid-load observability: histograms have samples, gauges are live,
    # and the flight recorder can export its slowest request.
    scrape_metrics(sock, lines, "phase 1")
    check_trace_op(sock, lines, trace_check, cache_dir)
    # Fire a request and kill the daemon while it is (possibly) solving.
    sock.sendall((json.dumps({"kernel": "mvt", "n": 4000}) + "\n").encode())
    time.sleep(0.05)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    print(f"phase 1: committed {len(committed)} entries, SIGKILLed pid {proc.pid}")

    # Phase 2: restart on the same directory — committed entries must
    # replay, recovery must be clean, and re-requests must be warm hits.
    proc, ready = spawn(binary, cache_dir)
    print(f"phase 2 ready line: {json.dumps(ready)}")
    assert ready["replayed"] >= len(committed), ready
    assert ready["corrupt_records_skipped"] == 0, ready
    sock, lines = connect(ready["addr"])
    for args, status, tiles in committed:
        reply = request(sock, lines, args)
        assert reply["status"] == status, reply
        assert reply["cache"] == "hit", reply
        assert reply.get("tiles") == tiles, reply
    # A fresh key solves post-restart, so the restarted process's stage
    # histograms are live too.
    reply = request(sock, lines, {"kernel": "gesummv", "n": 1500})
    assert reply["status"] in ("ok", "infeasible"), reply
    scrape_metrics(sock, lines, "phase 2")
    stats = request(sock, lines, {"op": "stats"})
    hits = stats["cache"]["hits"]
    misses = stats["cache"]["misses"]
    assert hits >= len(committed) and misses == 1, stats["cache"]
    assert request(sock, lines, {"op": "shutdown"})["status"] == "ok"
    assert proc.wait(timeout=30) == 0
    print(
        f"serve smoke PASS: replayed {ready['replayed']}, "
        f"warm hit rate {hits}/{hits + misses}, recovery clean"
    )


if __name__ == "__main__":
    main()
